"""Two-pass assembler for the toy RISC ISA.

Accepted syntax (one statement per line; ``;`` or ``#`` start a comment)::

    .text                   ; switch to the text section (default)
    .data                   ; switch to the data section
    .align 6                ; pad current section to a 2^6 boundary
    .space 128              ; reserve zeroed bytes (data only)
    .word 1, 0x2A, label    ; 32-bit little-endian words (labels relocate)
    .byte 65, 'B', 0x43     ; raw bytes
    .ascii "text"           ; string bytes, no terminator
    .asciiz "text"          ; NUL-terminated string
    .entry main             ; override the entry symbol (default "main")

    main:                   ; labels end with ':'
        li   t0, 10
        la   a0, message    ; pseudo-instruction: LI with a relocation
        lw   t1, 4(sp)
        beq  t0, zero, done
        call helper
    done:
        ret

Branch / ``jmp`` / ``call`` targets are resolved to PC-relative byte
offsets, so text is position independent; ``la`` and ``.word label`` emit
relocations patched by the loader.
"""

import re
import struct

from repro.errors import AssemblerError
from repro.isa.encoding import INSTRUCTION_SIZE, encode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, MNEMONICS, OPCODE_FORMATS, Opcode
from repro.isa.program import DATA, Program, Relocation, Symbol, TEXT
from repro.isa.registers import parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):(.*)$")
_MEM_OPERAND_RE = re.compile(r"^(-?[\w'+]*)\((\w+)\)$")
_SYMBOL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


def _strip_comment(line):
    out = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        if ch in ";#" and not in_string:
            break
        out.append(ch)
    return "".join(out).strip()


def _split_operands(text):
    """Split an operand list on commas that are outside string literals."""
    parts = []
    current = []
    in_string = False
    for ch in text:
        if ch == '"':
            in_string = not in_string
        if ch == "," and not in_string:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in parts if p]


def _parse_int(token):
    """Parse an integer literal: decimal, hex, binary or a char like 'A'."""
    token = token.strip()
    if len(token) == 3 and token[0] == "'" and token[2] == "'":
        return ord(token[1])
    try:
        return int(token, 0)
    except ValueError:
        raise ValueError(f"not an integer literal: {token!r}")


class _Statement:
    """One source line after pass 1: either an instruction or data bytes."""

    __slots__ = ("kind", "mnemonic", "operands", "payload", "line_number", "line")

    def __init__(self, kind, line_number, line, mnemonic=None, operands=None,
                 payload=None):
        self.kind = kind
        self.mnemonic = mnemonic
        self.operands = operands
        self.payload = payload
        self.line_number = line_number
        self.line = line


class Assembler:
    """Two-pass assembler producing relocatable :class:`Program` images."""

    def __init__(self, name="a.out"):
        self.name = name

    def assemble(self, source):
        """Assemble *source* text into a :class:`Program`."""
        symbols = {}
        self._symbols = symbols  # directive handlers may rebind labels
        relocations = []
        entry = "main"

        # ---- pass 1: layout -------------------------------------------
        section = TEXT
        offsets = {TEXT: 0, DATA: 0}
        statements = []  # (section, offset, _Statement)

        for line_number, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label, line = match.group(1), match.group(2).strip()
                if label in symbols:
                    raise AssemblerError(
                        f"duplicate label {label!r}", line_number, raw
                    )
                symbols[label] = Symbol(label, section, offsets[section])
            if not line:
                continue

            mnemonic, _, rest = line.partition(" ")
            mnemonic = mnemonic.lower()
            operands = _split_operands(rest)

            if mnemonic.startswith("."):
                section, entry = self._directive_pass1(
                    mnemonic, operands, section, offsets, statements,
                    entry, line_number, raw,
                )
                continue

            if section != TEXT:
                raise AssemblerError(
                    "instructions are only allowed in .text", line_number, raw
                )
            size = INSTRUCTION_SIZE * self._instruction_count(
                mnemonic, line_number, raw
            )
            statements.append((
                section,
                offsets[section],
                _Statement("insn", line_number, raw, mnemonic, operands),
            ))
            offsets[section] += size

        # ---- pass 2: encode -------------------------------------------
        text = bytearray(offsets[TEXT])
        data = bytearray(offsets[DATA])
        buffers = {TEXT: text, DATA: data}
        for section_name, offset, statement in statements:
            if statement.kind == "insn":
                encoded = self._encode_instruction(
                    statement, offset, symbols, relocations
                )
                text[offset:offset + len(encoded)] = encoded
            elif statement.kind == "bytes":
                blob = statement.payload
                buffers[section_name][offset:offset + len(blob)] = blob
            elif statement.kind == "words":
                self._encode_words(
                    statement, section_name, offset, buffers[section_name],
                    symbols, relocations,
                )
            else:
                raise AssertionError(statement.kind)

        if entry not in symbols and offsets[TEXT]:
            # Fall back to the first text byte so raw snippets still run.
            symbols.setdefault(entry, Symbol(entry, TEXT, 0))
        return Program(
            name=self.name,
            text=bytes(text),
            data=bytes(data),
            symbols=symbols,
            relocations=relocations,
            entry=entry,
        )

    # ------------------------------------------------------------------
    def _directive_pass1(self, mnemonic, operands, section, offsets,
                         statements, entry, line_number, raw):
        if mnemonic == ".text":
            return TEXT, entry
        if mnemonic == ".data":
            return DATA, entry
        if mnemonic == ".entry":
            if len(operands) != 1:
                raise AssemblerError(".entry takes one symbol", line_number, raw)
            return section, operands[0]
        if mnemonic == ".align":
            if len(operands) != 1:
                raise AssemblerError(".align takes one power", line_number, raw)
            power = _parse_int(operands[0])
            alignment = 1 << power
            pad = (-offsets[section]) % alignment
            if pad:
                statements.append((
                    section, offsets[section],
                    _Statement("bytes", line_number, raw, payload=bytes(pad)),
                ))
                offsets[section] += pad
            return section, entry
        if mnemonic == ".space":
            if len(operands) != 1:
                raise AssemblerError(".space takes one size", line_number, raw)
            size = _parse_int(operands[0])
            if size < 0:
                raise AssemblerError("negative .space", line_number, raw)
            statements.append((
                section, offsets[section],
                _Statement("bytes", line_number, raw, payload=bytes(size)),
            ))
            offsets[section] += size
            return section, entry
        if mnemonic == ".byte":
            payload = bytes(_parse_int(op) & 0xFF for op in operands)
            statements.append((
                section, offsets[section],
                _Statement("bytes", line_number, raw, payload=payload),
            ))
            offsets[section] += len(payload)
            return section, entry
        if mnemonic in (".ascii", ".asciiz"):
            joined = ",".join(operands)
            if not (joined.startswith('"') and joined.endswith('"')):
                raise AssemblerError(
                    f"{mnemonic} needs a quoted string", line_number, raw
                )
            literal = joined[1:-1]
            payload = (
                literal.encode("utf-8")
                .decode("unicode_escape")
                .encode("latin-1")
            )
            if mnemonic == ".asciiz":
                payload += b"\x00"
            statements.append((
                section, offsets[section],
                _Statement("bytes", line_number, raw, payload=payload),
            ))
            offsets[section] += len(payload)
            return section, entry
        if mnemonic == ".word":
            pad = (-offsets[section]) % 4  # .word data self-aligns
            if pad:
                # Labels already bound to the unaligned offset move with
                # the data they were meant to name.
                for name, symbol in list(self._symbols.items()):
                    if (symbol.section == section
                            and symbol.offset == offsets[section]):
                        self._symbols[name] = Symbol(
                            name, section, symbol.offset + pad
                        )
                statements.append((
                    section, offsets[section],
                    _Statement("bytes", line_number, raw, payload=bytes(pad)),
                ))
                offsets[section] += pad
            statements.append((
                section, offsets[section],
                _Statement("words", line_number, raw, operands=operands),
            ))
            offsets[section] += 4 * len(operands)
            return section, entry
        raise AssemblerError(f"unknown directive {mnemonic}", line_number, raw)

    def _instruction_count(self, mnemonic, line_number, raw):
        if mnemonic in ("la",) or mnemonic in MNEMONICS:
            return 1
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_number, raw)

    # ------------------------------------------------------------------
    def _resolve_value(self, token, symbols, want_symbol=False):
        """Resolve an integer literal or ``symbol[+offset]`` expression.

        Returns ``(value_or_none, symbol_or_none, addend)``.
        """
        token = token.strip()
        try:
            return _parse_int(token), None, 0
        except ValueError:
            pass
        base, plus, rest = token.partition("+")
        addend = _parse_int(rest) if plus else 0
        if not _SYMBOL_RE.match(base):
            raise ValueError(f"bad operand {token!r}")
        if base not in symbols:
            raise ValueError(f"undefined symbol {base!r}")
        return None, base, addend

    def _encode_instruction(self, statement, offset, symbols, relocations):
        mnemonic, operands = statement.mnemonic, statement.operands
        line_number, raw = statement.line_number, statement.line
        try:
            if mnemonic == "la":
                return self._encode_la(operands, offset, symbols, relocations)
            opcode = MNEMONICS[mnemonic]
            fmt = OPCODE_FORMATS[opcode]
            builder = getattr(self, "_fmt_" + fmt.value)
            instruction = builder(opcode, operands, offset, symbols)
        except AssemblerError:
            raise
        except (ValueError, KeyError, IndexError) as exc:
            raise AssemblerError(str(exc), line_number, raw)
        encoded = encode_program([instruction])
        if fmt is Format.RI and isinstance(instruction.imm, int):
            pass
        return encoded

    def _encode_la(self, operands, offset, symbols, relocations):
        if len(operands) != 2:
            raise ValueError("la takes rd, symbol")
        rd = parse_register(operands[0])
        value, symbol, addend = self._resolve_value(operands[1], symbols)
        if symbol is None:
            instruction = Instruction(Opcode.LI, rd=rd, imm=_signed32(value))
            return encode_program([instruction])
        relocations.append(Relocation(TEXT, offset + 4, symbol, addend))
        instruction = Instruction(Opcode.LI, rd=rd, imm=0)
        return encode_program([instruction])

    def _encode_words(self, statement, section, offset, buffer, symbols,
                      relocations):
        for index, token in enumerate(statement.operands):
            field = offset + 4 * index
            try:
                value, symbol, addend = self._resolve_value(token, symbols)
            except ValueError as exc:
                raise AssemblerError(
                    str(exc), statement.line_number, statement.line
                )
            if symbol is not None:
                relocations.append(Relocation(section, field, symbol, addend))
                value = 0
            struct.pack_into("<I", buffer, field, value & 0xFFFFFFFF)

    # ---- per-format operand parsers ----------------------------------
    def _branch_target(self, token, offset, symbols):
        value, symbol, addend = self._resolve_value(token, symbols)
        if symbol is not None:
            target = symbols[symbol]
            if target.section != TEXT:
                raise ValueError(f"branch target {symbol!r} not in .text")
            return target.offset + addend - offset
        return value

    def _fmt_none(self, opcode, operands, offset, symbols):
        if operands:
            raise ValueError(f"{opcode.name.lower()} takes no operands")
        return Instruction(opcode)

    def _fmt_rrr(self, opcode, operands, offset, symbols):
        if len(operands) != 3:
            raise ValueError(f"{opcode.name.lower()} takes rd, rs1, rs2")
        return Instruction(
            opcode,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
            rs2=parse_register(operands[2]),
        )

    def _fmt_rri(self, opcode, operands, offset, symbols):
        if len(operands) != 3:
            raise ValueError(f"{opcode.name.lower()} takes rd, rs1, imm")
        return Instruction(
            opcode,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
            imm=_signed32(_parse_int(operands[2])),
        )

    def _fmt_ri(self, opcode, operands, offset, symbols):
        if len(operands) != 2:
            raise ValueError(f"{opcode.name.lower()} takes rd, imm")
        return Instruction(
            opcode,
            rd=parse_register(operands[0]),
            imm=_signed32(_parse_int(operands[1])),
        )

    def _fmt_rr(self, opcode, operands, offset, symbols):
        if len(operands) != 2:
            raise ValueError(f"{opcode.name.lower()} takes rd, rs1")
        return Instruction(
            opcode,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
        )

    def _fmt_r_src(self, opcode, operands, offset, symbols):
        if len(operands) != 1:
            raise ValueError(f"{opcode.name.lower()} takes one register")
        return Instruction(opcode, rs1=parse_register(operands[0]))

    def _fmt_r_dst(self, opcode, operands, offset, symbols):
        if len(operands) != 1:
            raise ValueError(f"{opcode.name.lower()} takes one register")
        return Instruction(opcode, rd=parse_register(operands[0]))

    def _parse_mem(self, token):
        match = _MEM_OPERAND_RE.match(token.replace(" ", ""))
        if not match:
            raise ValueError(f"bad memory operand {token!r}")
        imm_text, reg_text = match.groups()
        imm = _parse_int(imm_text) if imm_text else 0
        return imm, parse_register(reg_text)

    def _fmt_mem_load(self, opcode, operands, offset, symbols):
        if len(operands) != 2:
            raise ValueError(f"{opcode.name.lower()} takes rd, imm(rs1)")
        imm, rs1 = self._parse_mem(operands[1])
        return Instruction(
            opcode, rd=parse_register(operands[0]), rs1=rs1, imm=imm
        )

    def _fmt_mem_store(self, opcode, operands, offset, symbols):
        if len(operands) != 2:
            raise ValueError(f"{opcode.name.lower()} takes rs2, imm(rs1)")
        imm, rs1 = self._parse_mem(operands[1])
        return Instruction(
            opcode, rs2=parse_register(operands[0]), rs1=rs1, imm=imm
        )

    def _fmt_mem_addr(self, opcode, operands, offset, symbols):
        if len(operands) != 1:
            raise ValueError(f"{opcode.name.lower()} takes imm(rs1)")
        imm, rs1 = self._parse_mem(operands[0])
        return Instruction(opcode, rs1=rs1, imm=imm)

    def _fmt_branch(self, opcode, operands, offset, symbols):
        if len(operands) != 3:
            raise ValueError(f"{opcode.name.lower()} takes rs1, rs2, target")
        return Instruction(
            opcode,
            rs1=parse_register(operands[0]),
            rs2=parse_register(operands[1]),
            imm=self._branch_target(operands[2], offset, symbols),
        )

    def _fmt_jump(self, opcode, operands, offset, symbols):
        if len(operands) != 1:
            raise ValueError(f"{opcode.name.lower()} takes one target")
        return Instruction(
            opcode, imm=self._branch_target(operands[0], offset, symbols)
        )

    def _fmt_jr(self, opcode, operands, offset, symbols):
        if len(operands) not in (1, 2):
            raise ValueError(f"{opcode.name.lower()} takes rs1[, imm]")
        imm = _parse_int(operands[1]) if len(operands) == 2 else 0
        return Instruction(opcode, rs1=parse_register(operands[0]), imm=imm)


def _signed32(value):
    """Wrap an arbitrary integer into the signed 32-bit immediate range."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def assemble(source, name="a.out"):
    """Convenience wrapper: assemble *source* into a :class:`Program`."""
    return Assembler(name=name).assemble(source)
