"""Linkable program images produced by the assembler.

A :class:`Program` is the simulated analogue of an object file / ELF
binary: it holds the encoded ``.text`` and ``.data`` sections, a symbol
table, and relocation records for every absolute address embedded in
either section.  The loader (:mod:`repro.kernel.loader`) picks base
addresses — possibly randomised under ASLR — and patches the relocations,
exactly the step that makes ROP payloads address-sensitive.
"""

import dataclasses
import struct


TEXT = "text"
DATA = "data"


@dataclasses.dataclass(frozen=True)
class Symbol:
    """A named location inside a section."""

    name: str
    section: str
    offset: int


@dataclasses.dataclass(frozen=True)
class Relocation:
    """An absolute-address fixup.

    ``section``/``offset`` locate the 4-byte field to patch (for text
    relocations the field is the ``imm`` slot, i.e. instruction offset + 4);
    the patched value is ``address_of(symbol) + addend``.
    """

    section: str
    offset: int
    symbol: str
    addend: int = 0


@dataclasses.dataclass
class Program:
    """An assembled, not-yet-loaded binary image."""

    name: str
    text: bytes
    data: bytes
    symbols: dict
    relocations: list
    entry: str = "main"

    def symbol(self, name):
        """Return the :class:`Symbol` for *name* (KeyError if undefined)."""
        return self.symbols[name]

    def has_symbol(self, name):
        return name in self.symbols

    def text_offset_of(self, name):
        """Offset of a text symbol within ``.text``."""
        symbol = self.symbols[name]
        if symbol.section != TEXT:
            raise ValueError(f"symbol {name!r} is not in .text")
        return symbol.offset

    def relocated(self, text_base, data_base):
        """Return ``(text_bytes, data_bytes)`` with relocations applied.

        The returned buffers are fresh ``bytearray`` copies; the program
        itself is immutable and can be loaded many times at different
        bases.
        """
        text = bytearray(self.text)
        data = bytearray(self.data)
        buffers = {TEXT: text, DATA: data}
        bases = {TEXT: text_base, DATA: data_base}
        for relocation in self.relocations:
            symbol = self.symbols[relocation.symbol]
            address = bases[symbol.section] + symbol.offset + relocation.addend
            struct.pack_into(
                "<I",
                buffers[relocation.section],
                relocation.offset,
                address & 0xFFFFFFFF,
            )
        return bytes(text), bytes(data)

    @property
    def text_size(self):
        return len(self.text)

    @property
    def data_size(self):
        return len(self.data)
