"""The :class:`Instruction` value type."""

import dataclasses

from repro.isa.opcodes import Format, OPCODE_FORMATS, Opcode
from repro.isa.registers import register_name

IMM_MIN = -(2**31)
IMM_MAX = 2**31 - 1


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One decoded machine instruction.

    ``imm`` is a signed 32-bit value; branch/jump immediates are *byte*
    offsets relative to the address of the instruction itself.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self):
        if not isinstance(self.opcode, Opcode):
            object.__setattr__(self, "opcode", Opcode(self.opcode))
        for field in ("rd", "rs1", "rs2"):
            value = getattr(self, field)
            if not 0 <= value < 16:
                raise ValueError(f"{field} out of range: {value}")
        if not IMM_MIN <= self.imm <= IMM_MAX:
            raise ValueError(f"immediate out of range: {self.imm}")

    @property
    def format(self):
        return OPCODE_FORMATS[self.opcode]

    def to_assembly(self):
        """Render the instruction as assembler-compatible text."""
        mnemonic = self.opcode.name.lower()
        fmt = self.format
        if fmt is Format.NONE:
            return mnemonic
        if fmt is Format.RRR:
            return (
                f"{mnemonic} {register_name(self.rd)}, "
                f"{register_name(self.rs1)}, {register_name(self.rs2)}"
            )
        if fmt is Format.RRI:
            return (
                f"{mnemonic} {register_name(self.rd)}, "
                f"{register_name(self.rs1)}, {self.imm}"
            )
        if fmt is Format.RI:
            return f"{mnemonic} {register_name(self.rd)}, {self.imm}"
        if fmt is Format.RR:
            return f"{mnemonic} {register_name(self.rd)}, {register_name(self.rs1)}"
        if fmt is Format.R_SRC:
            return f"{mnemonic} {register_name(self.rs1)}"
        if fmt is Format.R_DST:
            return f"{mnemonic} {register_name(self.rd)}"
        if fmt is Format.MEM_LOAD:
            return (
                f"{mnemonic} {register_name(self.rd)}, "
                f"{self.imm}({register_name(self.rs1)})"
            )
        if fmt is Format.MEM_STORE:
            return (
                f"{mnemonic} {register_name(self.rs2)}, "
                f"{self.imm}({register_name(self.rs1)})"
            )
        if fmt is Format.MEM_ADDR:
            return f"{mnemonic} {self.imm}({register_name(self.rs1)})"
        if fmt is Format.BRANCH:
            return (
                f"{mnemonic} {register_name(self.rs1)}, "
                f"{register_name(self.rs2)}, {self.imm}"
            )
        if fmt is Format.JUMP:
            return f"{mnemonic} {self.imm}"
        if fmt is Format.JR:
            return f"{mnemonic} {register_name(self.rs1)}, {self.imm}"
        raise AssertionError(f"unhandled format {fmt}")

    def __str__(self):
        return self.to_assembly()
