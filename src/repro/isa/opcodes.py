"""Opcode definitions for the toy RISC ISA.

Every instruction is a fixed 8-byte word (see :mod:`repro.isa.encoding`).
The numeric opcode values are part of the binary format: the ROP gadget
scanner recognises ``RET`` (and the instructions preceding it) directly in
the encoded bytes of loaded binaries, so the values below must stay stable.

Operand *formats* describe how the assembler parses and the disassembler
prints each instruction:

=========  ==========================================  ==================
Format     Assembly syntax                             Fields used
=========  ==========================================  ==================
``NONE``   ``ret``                                     --
``RRR``    ``add rd, rs1, rs2``                        rd, rs1, rs2
``RRI``    ``addi rd, rs1, imm``                       rd, rs1, imm
``RI``     ``li rd, imm``                              rd, imm
``RR``     ``mov rd, rs1``                             rd, rs1
``R``      ``push rs1`` / ``pop rd`` / ``rdcycle rd``  rs1 or rd
``MEM``    ``lw rd, imm(rs1)`` / ``sw rs2, imm(rs1)``  rd/rs2, rs1, imm
``BRANCH`` ``beq rs1, rs2, label``                     rs1, rs2, imm
``JUMP``   ``jmp label`` / ``call label``              imm (pc-relative)
``JR``     ``jmpr rs1`` / ``callr rs1``                rs1, imm
=========  ==========================================  ==================
"""

import enum


class Format(enum.Enum):
    """Operand format of an opcode (parse/print shape)."""

    NONE = "none"
    RRR = "rrr"
    RRI = "rri"
    RI = "ri"
    RR = "rr"
    R_SRC = "r_src"  # single source register (push)
    R_DST = "r_dst"  # single destination register (pop, rdcycle)
    MEM_LOAD = "mem_load"
    MEM_STORE = "mem_store"
    BRANCH = "branch"
    JUMP = "jump"
    JR = "jr"
    MEM_ADDR = "mem_addr"  # clflush imm(rs1)


class Opcode(enum.IntEnum):
    """All machine opcodes with their stable binary values."""

    NOP = 0x00
    HALT = 0x01

    # Register-register ALU.
    ADD = 0x10
    SUB = 0x11
    MUL = 0x12
    DIV = 0x13
    MOD = 0x14
    AND = 0x15
    OR = 0x16
    XOR = 0x17
    SHL = 0x18
    SHR = 0x19
    SRA = 0x1A
    SLT = 0x1B
    SLTU = 0x1C

    # Register-immediate ALU.
    ADDI = 0x20
    MULI = 0x21
    ANDI = 0x22
    ORI = 0x23
    XORI = 0x24
    SHLI = 0x25
    SHRI = 0x26
    SRAI = 0x27
    SLTI = 0x28
    LI = 0x29
    MOV = 0x2A

    # Memory.
    LW = 0x30
    LB = 0x31
    SW = 0x32
    SB = 0x33
    PUSH = 0x34
    POP = 0x35

    # Control flow.
    BEQ = 0x40
    BNE = 0x41
    BLT = 0x42
    BGE = 0x43
    BLTU = 0x44
    BGEU = 0x45
    JMP = 0x48
    JMPR = 0x49
    CALL = 0x4A
    CALLR = 0x4B
    RET = 0x4C

    # System.
    SYSCALL = 0x50
    CLFLUSH = 0x51
    MFENCE = 0x52
    RDCYCLE = 0x53
    RDINSTRET = 0x54


#: Opcode -> operand format.
OPCODE_FORMATS = {
    Opcode.NOP: Format.NONE,
    Opcode.HALT: Format.NONE,
    Opcode.ADD: Format.RRR,
    Opcode.SUB: Format.RRR,
    Opcode.MUL: Format.RRR,
    Opcode.DIV: Format.RRR,
    Opcode.MOD: Format.RRR,
    Opcode.AND: Format.RRR,
    Opcode.OR: Format.RRR,
    Opcode.XOR: Format.RRR,
    Opcode.SHL: Format.RRR,
    Opcode.SHR: Format.RRR,
    Opcode.SRA: Format.RRR,
    Opcode.SLT: Format.RRR,
    Opcode.SLTU: Format.RRR,
    Opcode.ADDI: Format.RRI,
    Opcode.MULI: Format.RRI,
    Opcode.ANDI: Format.RRI,
    Opcode.ORI: Format.RRI,
    Opcode.XORI: Format.RRI,
    Opcode.SHLI: Format.RRI,
    Opcode.SHRI: Format.RRI,
    Opcode.SRAI: Format.RRI,
    Opcode.SLTI: Format.RRI,
    Opcode.LI: Format.RI,
    Opcode.MOV: Format.RR,
    Opcode.LW: Format.MEM_LOAD,
    Opcode.LB: Format.MEM_LOAD,
    Opcode.SW: Format.MEM_STORE,
    Opcode.SB: Format.MEM_STORE,
    Opcode.PUSH: Format.R_SRC,
    Opcode.POP: Format.R_DST,
    Opcode.BEQ: Format.BRANCH,
    Opcode.BNE: Format.BRANCH,
    Opcode.BLT: Format.BRANCH,
    Opcode.BGE: Format.BRANCH,
    Opcode.BLTU: Format.BRANCH,
    Opcode.BGEU: Format.BRANCH,
    Opcode.JMP: Format.JUMP,
    Opcode.JMPR: Format.JR,
    Opcode.CALL: Format.JUMP,
    Opcode.CALLR: Format.JR,
    Opcode.RET: Format.NONE,
    Opcode.SYSCALL: Format.NONE,
    Opcode.CLFLUSH: Format.MEM_ADDR,
    Opcode.MFENCE: Format.NONE,
    Opcode.RDCYCLE: Format.R_DST,
    Opcode.RDINSTRET: Format.R_DST,
}

#: Lowercase mnemonic -> opcode, for the assembler.
MNEMONICS = {op.name.lower(): op for op in Opcode}

ALU_RRR_OPCODES = frozenset(
    op for op, fmt in OPCODE_FORMATS.items() if fmt is Format.RRR
)
ALU_RRI_OPCODES = frozenset(
    op for op, fmt in OPCODE_FORMATS.items() if fmt is Format.RRI
) | {Opcode.LI, Opcode.MOV}
LOAD_OPCODES = frozenset({Opcode.LW, Opcode.LB, Opcode.POP})
STORE_OPCODES = frozenset({Opcode.SW, Opcode.SB, Opcode.PUSH})
COND_BRANCH_OPCODES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU}
)
CONTROL_OPCODES = COND_BRANCH_OPCODES | {
    Opcode.JMP,
    Opcode.JMPR,
    Opcode.CALL,
    Opcode.CALLR,
    Opcode.RET,
}

VALID_OPCODE_VALUES = frozenset(int(op) for op in Opcode)


def is_valid_opcode(value):
    """Return True if *value* is the binary value of a defined opcode."""
    return value in VALID_OPCODE_VALUES
