"""Byte-addressable memory with segment-level R/W/X permissions.

The permission model is the piece that makes the ROP storyline honest:
Data Execution Prevention (DEP / W^X) is enforced by refusing instruction
fetches from segments without ``X``, so an attacker cannot simply write
shellcode into the overflowed stack buffer and jump to it — reusing the
host's own executable code (the ROP chain) is the only way in, exactly as
the paper argues.
"""

import struct

from repro.errors import (
    AlignmentFault,
    ProtectionFault,
    SegmentationFault,
)

PERM_R = 1
PERM_W = 2
PERM_X = 4


def format_perms(perms):
    """Render a permission bitmask as e.g. ``"r-x"``."""
    return (
        ("r" if perms & PERM_R else "-")
        + ("w" if perms & PERM_W else "-")
        + ("x" if perms & PERM_X else "-")
    )


class Segment:
    """A contiguous mapped region."""

    __slots__ = ("name", "base", "size", "perms", "buffer")

    def __init__(self, name, base, size, perms):
        if size <= 0:
            raise ValueError(f"segment {name!r} must have positive size")
        self.name = name
        self.base = base
        self.size = size
        self.perms = perms
        self.buffer = bytearray(size)

    @property
    def end(self):
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, address):
        return self.base <= address < self.end

    def overlaps(self, other):
        return self.base < other.end and other.base < self.end

    def __repr__(self):
        return (
            f"Segment({self.name!r}, base={self.base:#010x}, "
            f"size={self.size:#x}, perms={format_perms(self.perms)})"
        )


class Memory:
    """A process address space: a small set of non-overlapping segments.

    The hot path (``load_word``/``store_word``) keeps a one-entry segment
    cache because real programs overwhelmingly hit the same segment in
    bursts.
    """

    def __init__(self):
        self.segments = []
        self._last = None
        #: callbacks fired after a store lands in an executable
        #: segment (self-modifying code): the cores drop decode caches
        #: and compiled superblocks.  Under W^X (every standard image)
        #: no store can reach an X segment, so the notification path
        #: costs one permission-bit test per store.
        self._code_listeners = []

    def add_code_listener(self, callback):
        """Register ``callback(address, size)`` for executable writes."""
        self._code_listeners.append(callback)

    # ---- mapping ------------------------------------------------------
    def map_segment(self, name, base, size, perms):
        """Map a new zero-filled segment; returns it."""
        if base < 0 or base + size > 0x1_0000_0000:
            raise ValueError(
                f"segment {name!r} outside 32-bit address space"
            )
        segment = Segment(name, base, size, perms)
        for existing in self.segments:
            if existing.overlaps(segment):
                raise ValueError(
                    f"segment {name!r} overlaps {existing.name!r}"
                )
        self.segments.append(segment)
        self.segments.sort(key=lambda s: s.base)
        self._last = None
        return segment

    def unmap_all(self):
        """Drop every mapping (used by ``execve`` to replace the image)."""
        self.segments = []
        self._last = None

    def segment_by_name(self, name):
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise KeyError(f"no segment named {name!r}")

    def find_segment(self, address):
        """Return the segment containing *address* or raise a fault."""
        last = self._last
        if last is not None and last.contains(address):
            return last
        for segment in self.segments:
            if segment.contains(address):
                self._last = segment
                return segment
        raise SegmentationFault("unmapped access", address)

    def is_mapped(self, address):
        try:
            self.find_segment(address)
        except SegmentationFault:
            return False
        return True

    def executable_at(self, address):
        """True when *address* lies in an executable segment.

        Non-raising (unmapped -> False) and side-effect free apart from
        the shared one-entry segment cache; used by ``clflush`` to
        decide whether a flushed line carries code.
        """
        last = self._last
        if last is not None and last.contains(address):
            return bool(last.perms & PERM_X)
        for segment in self.segments:
            if segment.contains(address):
                self._last = segment
                return bool(segment.perms & PERM_X)
        return False

    # ---- typed access -------------------------------------------------
    def _checked(self, address, size, perm):
        segment = self.find_segment(address)
        if address + size > segment.end:
            raise SegmentationFault("access crosses segment end", address)
        if not segment.perms & perm:
            kind = {PERM_R: "read", PERM_W: "write", PERM_X: "execute"}[perm]
            raise ProtectionFault(
                f"{kind} of {format_perms(segment.perms)} "
                f"segment {segment.name!r}",
                address,
            )
        return segment

    def load_byte(self, address):
        segment = self._checked(address, 1, PERM_R)
        return segment.buffer[address - segment.base]

    def store_byte(self, address, value):
        segment = self._checked(address, 1, PERM_W)
        segment.buffer[address - segment.base] = value & 0xFF
        if segment.perms & PERM_X:
            for listener in self._code_listeners:
                listener(address, 1)

    def load_word(self, address):
        if address & 3:
            raise AlignmentFault("misaligned word load", address)
        segment = self._checked(address, 4, PERM_R)
        offset = address - segment.base
        return struct.unpack_from("<I", segment.buffer, offset)[0]

    def store_word(self, address, value):
        if address & 3:
            raise AlignmentFault("misaligned word store", address)
        segment = self._checked(address, 4, PERM_W)
        offset = address - segment.base
        struct.pack_into("<I", segment.buffer, offset, value & 0xFFFFFFFF)
        if segment.perms & PERM_X:
            for listener in self._code_listeners:
                listener(address, 4)

    def fetch(self, address, size):
        """Instruction fetch: *size* bytes with execute permission."""
        segment = self._checked(address, size, PERM_X)
        offset = address - segment.base
        return bytes(segment.buffer[offset:offset + size])

    # ---- bulk helpers (used by the loader and syscalls) ----------------
    def write_bytes(self, address, blob, force=False):
        """Copy *blob* into memory; ``force`` bypasses W permission.

        The loader uses ``force=True`` to populate read-only text segments.
        """
        remaining = memoryview(bytes(blob))
        while remaining:
            segment = self.find_segment(address)
            if not force and not segment.perms & PERM_W:
                raise ProtectionFault(
                    f"write of read-only segment {segment.name!r}", address
                )
            offset = address - segment.base
            chunk = min(len(remaining), segment.size - offset)
            segment.buffer[offset:offset + chunk] = remaining[:chunk]
            if segment.perms & PERM_X:
                for listener in self._code_listeners:
                    listener(address, chunk)
            remaining = remaining[chunk:]
            address += chunk

    def read_bytes(self, address, size):
        out = bytearray()
        while size:
            segment = self.find_segment(address)
            offset = address - segment.base
            chunk = min(size, segment.size - offset)
            out += segment.buffer[offset:offset + chunk]
            size -= chunk
            address += chunk
        return bytes(out)

    def read_cstring(self, address, limit=4096):
        """Read a NUL-terminated string (syscall path argument)."""
        out = bytearray()
        for _ in range(limit):
            byte = self.load_byte(address)
            if byte == 0:
                return bytes(out)
            out.append(byte)
            address += 1
        raise SegmentationFault("unterminated string", address)
