"""A small translation lookaside buffer model.

The simulator keeps a flat (identity-mapped) address space, so the TLB
does not translate anything — it only *accounts*: hits and misses per
page, which feed the ``dtlb_*`` / ``itlb_*`` performance events.  TLB
pressure is one of the 56 events the paper's detector can select from.
"""

from collections import OrderedDict

from repro.mem.layout import PAGE_SHIFT


class Tlb:
    """Fully associative TLB with LRU replacement."""

    def __init__(self, entries=64):
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self._pages = OrderedDict()
        #: most-recently-touched page: consecutive accesses to one page
        #: (the overwhelmingly common case for the data stream) skip the
        #: OrderedDict reorder entirely.  The MRU page can never be the
        #: LRU eviction victim, so the shortcut cannot change contents.
        self._last_page = -1
        self.hits = 0
        self.misses = 0

    def access(self, address):
        """Touch the page of *address*; returns True on a TLB hit."""
        page = address >> PAGE_SHIFT
        if page == self._last_page:
            self.hits += 1
            return True
        if page in self._pages:
            self._pages.move_to_end(page)
            self._last_page = page
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page] = True
        self._last_page = page
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return False

    def flush(self):
        """Drop all entries (context switch / execve)."""
        self._pages.clear()
        self._last_page = -1

    @property
    def occupancy(self):
        return len(self._pages)

    def reset_counters(self):
        self.hits = 0
        self.misses = 0
