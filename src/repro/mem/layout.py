"""Default address-space layout and ASLR.

The layout mimics a classic 32-bit Linux process::

    0x0040_0000   .text of the main binary          (r-x)
    0x0800_0000   .text of the shared libc image    (r-x)
    0x1000_0000   .data / heap of the main binary   (rw-)
    0x1800_0000   .data of the libc image           (rw-)
    0x7FFF_0000   top of the downward-growing stack (rw-)

ASLR, when enabled, slides each region by a random page-aligned delta.
The ROP payload is built against concrete gadget addresses, so enabling
ASLR (without an information leak) breaks the chain — the countermeasure
experiment relies on exactly that.
"""

import dataclasses
import random

PAGE_SIZE = 4096
PAGE_SHIFT = 12

TEXT_BASE = 0x0040_0000
LIBC_TEXT_BASE = 0x0800_0000
DATA_BASE = 0x1000_0000
LIBC_DATA_BASE = 0x1800_0000
STACK_TOP = 0x7FFF_0000
STACK_SIZE = 0x0010_0000  # 1 MiB


@dataclasses.dataclass(frozen=True)
class AddressSpaceLayout:
    """Concrete base addresses chosen for one process image."""

    text_base: int = TEXT_BASE
    libc_text_base: int = LIBC_TEXT_BASE
    data_base: int = DATA_BASE
    libc_data_base: int = LIBC_DATA_BASE
    stack_top: int = STACK_TOP
    stack_size: int = STACK_SIZE

    @property
    def stack_base(self):
        return self.stack_top - self.stack_size


def page_align(address):
    """Round *address* down to a page boundary."""
    return address & ~(PAGE_SIZE - 1)


def randomized_layout(rng=None, entropy_bits=12):
    """Return an ASLR-randomised layout.

    *entropy_bits* is the number of random page-granular bits per region
    (12 bits of page entropy ≈ the classic 32-bit Linux mmap entropy).
    """
    rng = rng or random.Random()
    span = 1 << entropy_bits

    def slide():
        return rng.randrange(span) * PAGE_SIZE

    return AddressSpaceLayout(
        text_base=TEXT_BASE + slide(),
        libc_text_base=LIBC_TEXT_BASE + slide(),
        data_base=DATA_BASE + slide(),
        libc_data_base=LIBC_DATA_BASE + slide(),
        stack_top=STACK_TOP - slide(),
    )
