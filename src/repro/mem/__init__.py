"""Memory subsystem: segments + permissions (DEP), layout/ASLR, TLB."""

from repro.mem.layout import (
    AddressSpaceLayout,
    DATA_BASE,
    LIBC_DATA_BASE,
    LIBC_TEXT_BASE,
    PAGE_SHIFT,
    PAGE_SIZE,
    STACK_SIZE,
    STACK_TOP,
    TEXT_BASE,
    page_align,
    randomized_layout,
)
from repro.mem.memory import (
    Memory,
    PERM_R,
    PERM_W,
    PERM_X,
    Segment,
    format_perms,
)
from repro.mem.tlb import Tlb

__all__ = [
    "AddressSpaceLayout",
    "DATA_BASE",
    "LIBC_DATA_BASE",
    "LIBC_TEXT_BASE",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "STACK_SIZE",
    "STACK_TOP",
    "TEXT_BASE",
    "page_align",
    "randomized_layout",
    "Memory",
    "PERM_R",
    "PERM_W",
    "PERM_X",
    "Segment",
    "format_perms",
    "Tlb",
]
