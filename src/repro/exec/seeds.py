"""Deterministic per-cell seed derivation.

A sweep cell must produce the same value no matter which worker runs it,
in which order, on which backend — so every cell draws its randomness
from a seed derived *only* from (experiment name, cell key, root seed).
The derivation is a stable cryptographic hash, never Python's builtin
``hash()`` (salted per interpreter via ``PYTHONHASHSEED``): two
interpreters, or the same interpreter on different days, always agree.

Scheme (documented contract, see ``docs/PARALLELISM.md``)::

    material = "<experiment>\\x00<cell key>\\x00<root seed>"  (UTF-8)
    seed     = int.from_bytes(sha256(material)[:8], "big")

The 64-bit truncation keeps seeds inside the range every consumer
(``random.Random``, numpy generators, the simulated ``System``) accepts
while preserving effectively-zero collision probability across a sweep.
"""

import hashlib

#: Number of sha256 bytes folded into a seed (64 bits).
_SEED_BYTES = 8


def stable_hash(*parts):
    """64-bit integer digest of the parts, stable across interpreters.

    Each part is rendered with ``str()`` and joined with NUL separators,
    so ``("a", "bc")`` and ``("ab", "c")`` hash differently.
    """
    material = "\x00".join(str(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def derive_seed(experiment, cell_key, root_seed):
    """The seed one cell of one experiment draws its randomness from."""
    return stable_hash(experiment, cell_key, root_seed)
