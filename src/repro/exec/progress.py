"""Live progress/ETA for long sweeps.

A :class:`SweepProgress` is handed to :func:`repro.exec.runner.
execute_plan`; it prints one line per completed cell (to stderr by
default, so report artefacts on stdout stay byte-identical across
backends) with a wall-clock ETA extrapolated from the mean cell time
and the backend's parallel width.
"""

import sys
import time

from repro.core.reporting import format_progress


class SweepProgress:
    """Per-cell completion lines with a running ETA."""

    def __init__(self, experiment, total, jobs=1, stream=None):
        self.experiment = experiment
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.started = time.monotonic()
        self._computed = 0
        self._computed_seconds = 0.0

    def eta_seconds(self):
        """Remaining wall-clock, from mean computed-cell time ÷ width.

        Cached cells are excluded from the mean (they replay in
        microseconds and would wreck the estimate for the cells that
        actually have to run).
        """
        if self._computed == 0:
            return None
        remaining = self.total - self.done
        mean = self._computed_seconds / self._computed
        return remaining * mean / self.jobs

    def update(self, key, status, elapsed):
        self.done += 1
        if status != "cached":
            self._computed += 1
            self._computed_seconds += elapsed
        line = format_progress(
            self.experiment, self.done, self.total, key, status,
            elapsed, self.eta_seconds(),
        )
        print(line, file=self.stream, flush=True)
