"""Live progress/ETA for long sweeps.

A :class:`SweepProgress` is handed to :func:`repro.exec.runner.
execute_plan`; it prints one line per completed cell (to stderr by
default, so report artefacts on stdout stay byte-identical across
backends) with observed throughput (cells/s) and a wall-clock ETA
extrapolated from it.
"""

import sys
import time

from repro.core.reporting import format_progress
from repro.obs.metrics import format_metrics_line


class SweepProgress:
    """Per-cell completion lines with throughput and a running ETA.

    The estimate is *batch-aware*: the warm-pool backend delivers
    results in bursts (one burst per batch round-trip), so a
    mean-cell-time × width model would oscillate wildly between
    bursts.  Instead the ETA divides the remaining cell count by the
    throughput actually observed on the driver's wall clock —
    ``computed cells / elapsed`` — which prices in parallel width,
    batching and pool overhead without modelling any of them.

    When the sweep traces (``--trace``), each line also carries the
    cell's headline metrics — virtual cycles, cache misses, record
    count — pulled from the per-cell snapshot the runner hands over.
    When a :class:`~repro.exec.cellcache.CellCache` is attached, the
    line shows its running hit ratio (``cache hits/lookups``).

    *clock* exists for tests: progress math must be assertable without
    real sleeps.
    """

    def __init__(self, experiment, total, jobs=1, stream=None,
                 cell_cache=None, clock=time.monotonic):
        self.experiment = experiment
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.cell_cache = cell_cache
        self._clock = clock
        self.done = 0
        self.started = clock()
        self._computed = 0
        self._computed_seconds = 0.0
        # Executor-event tallies (requeue/reconnect/fallback counts and
        # requeued-cell totals) — the fleet-telemetry tests reconcile
        # these against the server journal after a chaos kill.
        self.events = {}
        self.requeued_cells = 0

    def cells_per_second(self):
        """Observed computed-cell throughput on the wall clock.

        Cached cells are excluded (they replay in microseconds and
        would inflate the rate the remaining *computed* cells are
        estimated with); ``None`` until the first computed cell lands.
        """
        wall = self._clock() - self.started
        if self._computed == 0 or wall <= 0:
            return None
        return self._computed / wall

    def eta_seconds(self):
        """Remaining wall-clock: cells left ÷ observed throughput."""
        rate = self.cells_per_second()
        if rate is None:
            return None
        return (self.total - self.done) / rate

    def update(self, key, status, elapsed, metrics=None):
        self.done += 1
        if status != "cached":
            self._computed += 1
            self._computed_seconds += elapsed
        cache = None
        if self.cell_cache is not None:
            lookups = self.cell_cache.hits + self.cell_cache.misses
            if lookups:
                cache = f"{self.cell_cache.hits}/{lookups}"
        line = format_progress(
            self.experiment, self.done, self.total, key, status,
            elapsed, self.eta_seconds(),
            metrics=format_metrics_line(metrics) if metrics else None,
            rate=self.cells_per_second(), cache=cache,
            requeues=self.requeued_cells,
        )
        print(line, file=self.stream, flush=True)

    def phases(self, breakdown):
        """One end-of-sweep line: where execute_plan's wall time went.

        *breakdown* maps phase name (schedule / cache_lookup / compute /
        ipc / merge) to seconds; zero phases are elided so a serial
        untraced sweep prints a short line.
        """
        parts = [f"{name} {seconds:.2f}s"
                 for name, seconds in breakdown.items()
                 if seconds >= 0.005]
        if not parts:
            return
        print(f"{self.experiment}: phases: " + ", ".join(parts),
              file=self.stream, flush=True)

    def event(self, kind, **info):
        """Out-of-band executor events on their own lines.

        The dist backend reports lease requeues, reconnects and
        fallbacks through this hook so a watching operator sees the
        turbulence, while the per-cell completion lines stay a clean
        record of forward progress.  Tallies land in ``self.events``
        (and ``self.requeued_cells`` for requeues), so later lines
        carry a running ``req N`` suffix.
        """
        self.events[kind] = self.events.get(kind, 0) + 1
        if kind == "requeue":
            self.requeued_cells += len(info.get("keys") or [])
        detail = ", ".join(f"{key}={value}" for key, value
                           in sorted(info.items()))
        print(f"{self.experiment}: ! {kind}"
              + (f" ({detail})" if detail else ""),
              file=self.stream, flush=True)
