"""Live progress/ETA for long sweeps.

A :class:`SweepProgress` is handed to :func:`repro.exec.runner.
execute_plan`; it prints one line per completed cell (to stderr by
default, so report artefacts on stdout stay byte-identical across
backends) with a wall-clock ETA extrapolated from the mean cell time
and the backend's parallel width.
"""

import sys
import time

from repro.core.reporting import format_progress
from repro.obs.metrics import format_metrics_line


class SweepProgress:
    """Per-cell completion lines with a running ETA.

    When the sweep traces (``--trace``), each line also carries the
    cell's headline metrics — virtual cycles, cache misses, record
    count — pulled from the per-cell snapshot the runner hands over.
    """

    def __init__(self, experiment, total, jobs=1, stream=None):
        self.experiment = experiment
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.started = time.monotonic()
        self._computed = 0
        self._computed_seconds = 0.0

    def eta_seconds(self):
        """Remaining wall-clock, from mean computed-cell time ÷ width.

        Cached cells are excluded from the mean (they replay in
        microseconds and would wreck the estimate for the cells that
        actually have to run).
        """
        if self._computed == 0:
            return None
        remaining = self.total - self.done
        mean = self._computed_seconds / self._computed
        return remaining * mean / self.jobs

    def update(self, key, status, elapsed, metrics=None):
        self.done += 1
        if status != "cached":
            self._computed += 1
            self._computed_seconds += elapsed
        line = format_progress(
            self.experiment, self.done, self.total, key, status,
            elapsed, self.eta_seconds(),
            metrics=format_metrics_line(metrics) if metrics else None,
        )
        print(line, file=self.stream, flush=True)
