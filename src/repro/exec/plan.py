"""Cell / SweepPlan: the declarative form of an experiment sweep.

A runner no longer loops inline over hosts × attempts × rows; it
declares a :class:`SweepPlan` — an ordered set of named :class:`Cell`\\ s
with explicit data dependencies — and hands the plan to a backend
(:mod:`repro.exec.backends`).  Because each cell carries its own derived
seed (:func:`repro.exec.seeds.derive_seed`) and its own derived fault
stream, the plan's results are a pure function of (experiment, knobs,
root seed): serial and parallel execution produce identical values.
"""

import dataclasses

from repro.exec.seeds import derive_seed


@dataclasses.dataclass
class Cell:
    """One unit of sweep work.

    ``fn(**kwargs)`` must return a JSON-serialisable value.  ``deps``
    maps a kwarg name to another cell's key: the runner injects that
    cell's (possibly checkpoint-cached) value before invoking ``fn``.
    ``seed_kw``/``faults_kw`` name the kwargs that receive the derived
    per-cell seed / fault injector (``None`` = the cell takes neither).
    ``local`` marks a cell that must run in the driver process (it
    closes over shared live state and cannot be pickled to a worker).
    ``persist`` controls whether the value is written to the checkpoint.
    """

    key: str
    fn: object
    kwargs: dict
    seed: int
    deps: dict = dataclasses.field(default_factory=dict)
    seed_kw: str = None
    faults_kw: str = None
    local: bool = False
    persist: bool = True


class SweepPlan:
    """An experiment's cell grid, in declaration order."""

    def __init__(self, experiment, root_seed, faults=None):
        self.experiment = experiment
        self.root_seed = root_seed
        self.faults = faults
        self.cells = []
        self.presets = {}
        self._keys = set()

    def add(self, key, fn, kwargs=None, deps=None, seed_kw=None,
            faults_kw=None, local=False, persist=True):
        """Declare one cell; returns its derived seed (for inspection)."""
        key = str(key)
        if key in self._keys or key in self.presets:
            raise ValueError(
                f"duplicate cell key {key!r} in plan {self.experiment!r}"
            )
        deps = dict(deps or {})
        for kwarg, dep_key in deps.items():
            if dep_key not in self._keys and dep_key not in self.presets:
                raise ValueError(
                    f"cell {key!r} depends on unknown cell {dep_key!r} "
                    f"(dependencies must be declared first)"
                )
            if kwarg in (kwargs or {}):
                raise ValueError(
                    f"cell {key!r}: kwarg {kwarg!r} is both fixed and "
                    f"dependency-injected"
                )
        seed = derive_seed(self.experiment, key, self.root_seed)
        self.cells.append(Cell(
            key=key, fn=fn, kwargs=dict(kwargs or {}), seed=seed,
            deps=deps, seed_kw=seed_kw, faults_kw=faults_kw,
            local=local, persist=persist,
        ))
        self._keys.add(key)
        return seed

    def preset(self, key, value):
        """Provide a dependency value without a cell (shared-state reuse).

        A preset never executes and is never persisted; it exists so a
        caller that already holds e.g. a sampled training corpus can
        feed it to dependent cells.
        """
        key = str(key)
        if key in self._keys or key in self.presets:
            raise ValueError(f"duplicate cell key {key!r}")
        self.presets[key] = value

    @property
    def has_local_cells(self):
        return any(cell.local for cell in self.cells)

    def __len__(self):
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def waves(self):
        """Cells grouped into dependency levels, declaration order kept.

        Wave *n* contains every cell whose dependencies all live in
        waves < *n* (or in presets); cells inside one wave are mutually
        independent and may run concurrently.
        """
        level = {key: -1 for key in self.presets}
        waves = []
        for cell in self.cells:
            depth = -1
            for dep_key in cell.deps.values():
                depth = max(depth, level[dep_key])
            level[cell.key] = depth + 1
            while len(waves) <= depth + 1:
                waves.append([])
            waves[depth + 1].append(cell)
        return waves
