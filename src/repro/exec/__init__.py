"""Deterministic parallel sweep execution.

The subsystem every experiment runner dispatches through: a sweep is
declared as a :class:`SweepPlan` of :class:`Cell`\\ s (each with a
derived seed and explicit dependencies), executed by a backend —
:class:`SerialBackend` in-process, :class:`ProcessPoolBackend` over
spawn-safe warm workers, or :class:`DistBackend` against a
lease-granting :class:`DistServer` over the wire (see
``docs/DISTRIBUTED.md``) — and merged back into the resilience layer's
:class:`~repro.core.resilience.CheckpointStore`.  Parallel and
distributed output is bit-identical to serial output under the same
root seed; see ``docs/PARALLELISM.md`` for the seed-derivation scheme
and the determinism guarantee.
"""

from repro.exec.backends import (
    ProcessPoolBackend,
    SerialBackend,
    invoke_cell,
)
from repro.exec.cellcache import CellCache
from repro.exec.dist import (
    DistBackend,
    DistServer,
    fleet_status,
    run_worker,
)
from repro.exec.lease import Lease, LeaseTable
from repro.exec.plan import Cell, SweepPlan
from repro.exec.pool import shutdown_all, shutdown_pools, warmup
from repro.exec.progress import SweepProgress
from repro.exec.runner import (
    TRACED_VALUE,
    CellExecutionError,
    describe_plan,
    execute_plan,
    open_store,
)
from repro.exec.seeds import derive_seed, stable_hash

__all__ = [
    "Cell",
    "CellCache",
    "CellExecutionError",
    "DistBackend",
    "DistServer",
    "Lease",
    "LeaseTable",
    "ProcessPoolBackend",
    "SerialBackend",
    "SweepPlan",
    "SweepProgress",
    "TRACED_VALUE",
    "derive_seed",
    "describe_plan",
    "execute_plan",
    "fleet_status",
    "invoke_cell",
    "open_store",
    "run_worker",
    "shutdown_all",
    "shutdown_pools",
    "stable_hash",
    "warmup",
]


def backend_for(jobs):
    """The backend for a ``--jobs N`` request (1 = serial reference)."""
    if jobs is None or jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs)
