"""Plan execution: cache, fan out, absorb failures, merge, persist.

:func:`execute_plan` is the single entry point every experiment runner
uses.  It resolves checkpoint-cached cells, hands the rest to a backend
wave by wave (a wave = cells whose dependencies are all satisfied),
absorbs recoverable failures into per-cell statuses exactly like
:func:`repro.core.resilience.run_cell` does, and persists completed
cells — monolithically when serial, as O_EXCL shards when concurrent
(consolidated back into the monolith at the end, so the final artefact
is identical either way).

Determinism contract: a plan's results depend only on (experiment,
knobs, root seed).  Each cell runs with a derived seed and a derived
fault injector, every value is round-tripped through JSON (so a fresh
value and a checkpoint-replayed value are indistinguishable), and
statuses/results are emitted in declaration order regardless of the
order cells actually finished in.
"""

import json

from repro.core.resilience import (
    CELL_CACHED,
    CELL_FAILED,
    CELL_OK,
    CheckpointStore,
)
from repro.core.reporting import format_table
from repro.errors import FatalError
from repro.exec.backends import SerialBackend


class CellExecutionError(FatalError):
    """A cell raised a non-recoverable error; the sweep must not go on.

    The original exception may have been raised in a worker process;
    its type and cause chain survive in the message.
    """

    def __init__(self, key, chain):
        super().__init__(f"cell {key!r} failed fatally: {chain}")
        self.key = key
        self.chain = chain


def _roundtrip(value):
    """Normalise a fresh cell value through JSON.

    A resumed sweep replays values that went to disk and back; a fresh
    sweep must see the identical representation (tuples already lists,
    int keys already strings), or resumed and uninterrupted runs could
    render differently.
    """
    return json.loads(json.dumps(value))


def open_store(checkpoint, experiment, meta):
    """Resolve a checkpoint directory into a store (or None).

    The sweep persists to ``<checkpoint>/<experiment>.json``; ``meta``
    must hold every knob that changes the plan's cells, so a stored
    checkpoint with different meta is discarded, never mixed in.
    """
    if checkpoint is None:
        return None
    import os

    path = os.path.join(os.fspath(checkpoint), f"{experiment}.json")
    return CheckpointStore(path, meta={"experiment": experiment, **meta})


def execute_plan(plan, store=None, statuses=None, backend=None,
                 progress=None):
    """Run every cell of *plan*; returns ``{cell key: value-or-None}``.

    *statuses* (dict) receives ``key -> {"status": ..., "error": ...}``
    in declaration order: ``cached`` (checkpoint hit), ``ok`` or
    ``failed`` (recoverable error, chain attached).  Cells whose
    dependency failed are skipped silently — their value is ``None`` and
    they get no status, matching the historical early-return behaviour
    of the serial runners.
    """
    backend = backend or SerialBackend()
    if plan.has_local_cells and backend.concurrent:
        # Local cells close over live shared state (an injected
        # Scenario); they cannot be shipped to a worker.  Fall back to
        # the reference backend rather than silently running a subset.
        backend = SerialBackend()
    if statuses is None:
        statuses = {}
    results = dict(plan.presets)
    recorded = {}

    def persist(key, value):
        if store is None:
            return
        if backend.concurrent:
            store.put_shard(key, value)
        else:
            store.put(key, value)

    try:
        for wave in plan.waves():
            jobs = []
            for cell in wave:
                # A failed or skipped dependency (None sentinel) skips
                # this cell too; presets are always satisfied.
                if any(dep not in plan.presets and results.get(dep) is None
                       for dep in cell.deps.values()):
                    results[cell.key] = None
                    continue
                if store is not None and cell.key in store:
                    results[cell.key] = store.get(cell.key)
                    recorded[cell.key] = {"status": CELL_CACHED}
                    if progress is not None:
                        progress.update(cell.key, CELL_CACHED, 0.0)
                    continue
                kwargs = dict(cell.kwargs)
                for kwarg, dep_key in cell.deps.items():
                    kwargs[kwarg] = results[dep_key]
                if cell.seed_kw is not None:
                    kwargs.setdefault(cell.seed_kw, cell.seed)
                if cell.faults_kw is not None and plan.faults is not None:
                    kwargs.setdefault(
                        cell.faults_kw, plan.faults.derive(cell.seed)
                    )
                jobs.append((cell.key, cell.fn, kwargs, cell.faults_kw))

            persist_flags = {cell.key: cell.persist for cell in wave}
            for key, outcome in backend.run_wave(jobs):
                if plan.faults is not None and outcome.get("fired"):
                    plan.faults.absorb(outcome["fired"])
                if outcome["status"] == "ok":
                    value = _roundtrip(outcome["value"])
                    results[key] = value
                    recorded[key] = {"status": CELL_OK}
                    if persist_flags.get(key, True):
                        persist(key, value)
                elif outcome["recoverable"]:
                    results[key] = None
                    recorded[key] = {
                        "status": CELL_FAILED, "error": outcome["chain"],
                    }
                else:
                    raise CellExecutionError(key, outcome["chain"])
                if progress is not None:
                    progress.update(
                        key, recorded[key]["status"],
                        outcome.get("elapsed", 0.0),
                    )
    finally:
        backend.close()
        if store is not None and backend.concurrent:
            store.consolidate()

    for cell in plan:
        if cell.key in recorded:
            statuses[cell.key] = recorded[cell.key]
    return results


def describe_plan(plan, store=None):
    """Render the cell grid without executing it (``--list-cells``).

    One row per cell: key, derived seed, dependencies, and whether the
    checkpoint already holds its value.
    """
    rows = []
    for cell in plan:
        status = "cached" if (store is not None and cell.key in store) \
            else "pending"
        deps = ", ".join(sorted(set(cell.deps.values()))) or "-"
        rows.append([cell.key, f"{cell.seed:#018x}", deps, status])
    cached = sum(1 for row in rows if row[3] == "cached")
    title = (f"{plan.experiment}: {len(rows)} cells "
             f"({cached} cached, {len(rows) - cached} pending), "
             f"root seed {plan.root_seed}")
    return format_table(["cell", "derived seed", "depends on", "status"],
                        rows, title=title)
