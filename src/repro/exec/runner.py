"""Plan execution: cache, fan out, absorb failures, merge, persist.

:func:`execute_plan` is the single entry point every experiment runner
uses.  It resolves checkpoint-cached cells, hands the rest to a backend
wave by wave (a wave = cells whose dependencies are all satisfied),
absorbs recoverable failures into per-cell statuses exactly like
:func:`repro.core.resilience.run_cell` does, and persists completed
cells — monolithically when serial, as O_EXCL shards when concurrent
(consolidated back into the monolith at the end, so the final artefact
is identical either way).

Determinism contract: a plan's results depend only on (experiment,
knobs, root seed).  Each cell runs with a derived seed and a derived
fault injector, every value is round-tripped through JSON (so a fresh
value and a checkpoint-replayed value are indistinguishable), and
statuses/results are emitted in declaration order regardless of the
order cells actually finished in.
"""

import json
import time

from repro.core.resilience import (
    CELL_CACHED,
    CELL_FAILED,
    CELL_OK,
    CheckpointStore,
)
from repro.core.reporting import format_table
from repro.errors import FatalError
from repro.exec.backends import SerialBackend


class CellExecutionError(FatalError):
    """A cell raised a non-recoverable error; the sweep must not go on.

    The original exception may have been raised in a worker process;
    its type and cause chain survive in the message.
    """

    def __init__(self, key, chain):
        super().__init__(f"cell {key!r} failed fatally: {chain}")
        self.key = key
        self.chain = chain


def _roundtrip(value):
    """Normalise a fresh cell value through JSON.

    A resumed sweep replays values that went to disk and back; a fresh
    sweep must see the identical representation (tuples already lists,
    int keys already strings), or resumed and uninterrupted runs could
    render differently.
    """
    return json.loads(json.dumps(value))


def open_store(checkpoint, experiment, meta, trace=None):
    """Resolve a checkpoint directory into a store (or None).

    The sweep persists to ``<checkpoint>/<experiment>.json``; ``meta``
    must hold every knob that changes the plan's cells, so a stored
    checkpoint with different meta is discarded, never mixed in.  A
    :class:`~repro.obs.TraceConfig` joins the meta: traced checkpoints
    carry trace/metrics envelopes an untraced run has no use for (and
    vice versa), so the two must not resume each other.
    """
    if checkpoint is None:
        return None
    import os

    path = os.path.join(os.fspath(checkpoint), f"{experiment}.json")
    meta = {"experiment": experiment, **meta}
    if trace is not None:
        meta["trace"] = {
            "categories": (None if trace.categories is None
                           else sorted(trace.categories)),
            "max_records": trace.max_records,
        }
    return CheckpointStore(path, meta=meta)


#: Marker key of a checkpoint value that carries its cell's trace.
TRACED_VALUE = "__traced_cell__"


def _wrap_traced(value, records, metrics):
    return {TRACED_VALUE: 1, "value": value,
            "trace": records, "metrics": metrics}


def _unwrap(stored):
    """Split a checkpoint value into (value, trace, metrics).

    Untraced checkpoints store the bare value; traced ones store the
    envelope.  Reading tolerates both, so the envelope never leaks into
    experiment results.
    """
    if isinstance(stored, dict) and stored.get(TRACED_VALUE) == 1:
        return stored["value"], stored.get("trace"), stored.get("metrics")
    return stored, None, None


def execute_plan(plan, store=None, statuses=None, backend=None,
                 progress=None, trace=None, traces=None, metrics=None,
                 timings=None, cell_cache=None, profile=None,
                 profiles=None, phases=None):
    """Run every cell of *plan*; returns ``{cell key: value-or-None}``.

    *statuses* (dict) receives ``key -> {"status": ..., "error": ...}``
    in declaration order: ``cached`` (checkpoint hit), ``ok`` or
    ``failed`` (recoverable error, chain attached).  Cells whose
    dependency failed are skipped silently — their value is ``None`` and
    they get no status, matching the historical early-return behaviour
    of the serial runners.

    *trace* (a :class:`~repro.obs.TraceConfig`) arms per-cell tracing:
    each cell body runs under its own :class:`~repro.obs.Tracer`, and
    the caller-supplied *traces* / *metrics* dicts receive
    ``key -> record list`` / ``key -> metrics snapshot`` in declaration
    order.  Trace records are virtual-timed and checkpointed alongside
    the value, so the filled dicts are byte-equal whether the cells ran
    serially, in a pool, or were replayed from a checkpoint.

    *timings* (dict) receives ``key -> wall-clock seconds`` per executed
    cell (0.0 for checkpoint replays).  Wall clock is *not* part of the
    determinism contract — the run ledger keeps it in the manifest's
    volatile section.

    *cell_cache* (a :class:`~repro.exec.cellcache.CellCache`) memoizes
    cell values across runs: a cell whose content digest is already in
    the cache is replayed (status ``cached``, like a checkpoint hit)
    instead of computed, and freshly computed values are stored for
    the next run.  Replayed and computed cells are indistinguishable
    downstream — same round-tripped value, same checkpoint bytes, same
    trace records — so a warm run compares byte-identical to the cold
    run that populated the cache.  Fault-armed plans bypass the cache
    entirely.

    *profile* (a :class:`~repro.obs.prof.ProfileConfig`) arms per-cell
    self-profiling: each cell body runs under its own
    :class:`~repro.obs.prof.Profiler` and the caller-supplied
    *profiles* dict receives ``key -> snapshot`` in declaration order.
    Everything but the snapshot's ``wall`` section is deterministic
    across backends.  Profiled runs bypass the cell cache (a memoized
    value has no profile to replay) and profiles are not checkpointed.

    *phases* (dict) receives a wall-clock breakdown of where
    ``execute_plan`` itself spent its time — ``schedule`` (building
    waves/jobs), ``cache_lookup`` (cell-cache digests + lookups),
    ``compute`` (summed cell bodies), ``ipc`` (backend round-trip
    residue; approximate under parallelism, where compute overlaps),
    ``merge`` (absorbing outcomes, persisting, final distribution).
    Volatile by nature — manifests keep it under ``timing``.
    """
    backend = backend or SerialBackend()
    if plan.has_local_cells and backend.concurrent:
        # Local cells close over live shared state (an injected
        # Scenario); they cannot be shipped to a worker.  Fall back to
        # the reference backend rather than silently running a subset.
        backend = SerialBackend()
    bind = getattr(backend, "bind", None)
    if bind is not None:
        # Backends that label remote work by experiment (DistBackend)
        # get to see the plan before the first wave ships.
        bind(plan)
    if statuses is None:
        statuses = {}
    results = dict(plan.presets)
    recorded = {}
    cell_traces = {}
    cell_metrics = {}
    cell_elapsed = {}
    cell_profiles = {}
    digests = {}
    tracing = trace is not None
    profiling = profile is not None and profile.active
    memoizing = (cell_cache is not None and plan.faults is None
                 and not profiling)
    phase_acc = {"schedule": 0.0, "cache_lookup": 0.0, "compute": 0.0,
                 "ipc": 0.0, "merge": 0.0}

    def persist(key, payload):
        if store is None:
            return
        if backend.concurrent:
            store.put_shard(key, payload)
        else:
            store.put(key, payload)

    def note(key, status, elapsed, snapshot):
        if progress is None:
            return
        if tracing:
            # The metrics kwarg is only offered when tracing is on, so
            # three-positional custom progress objects keep working.
            progress.update(key, status, elapsed, metrics=snapshot)
        else:
            progress.update(key, status, elapsed)

    try:
        for wave in plan.waves():
            build0 = time.monotonic()
            cache0 = phase_acc["cache_lookup"]
            jobs = []
            for cell in wave:
                # A failed or skipped dependency (None sentinel) skips
                # this cell too; presets are always satisfied.
                if any(dep not in plan.presets and results.get(dep) is None
                       for dep in cell.deps.values()):
                    results[cell.key] = None
                    continue
                if store is not None and cell.key in store:
                    value, replayed, snapshot = _unwrap(store.get(cell.key))
                    results[cell.key] = value
                    if replayed is not None:
                        cell_traces[cell.key] = replayed
                        cell_metrics[cell.key] = snapshot
                    recorded[cell.key] = {"status": CELL_CACHED}
                    cell_elapsed[cell.key] = 0.0
                    note(cell.key, CELL_CACHED, 0.0, snapshot)
                    continue
                kwargs = dict(cell.kwargs)
                for kwarg, dep_key in cell.deps.items():
                    kwargs[kwarg] = results[dep_key]
                if cell.seed_kw is not None:
                    kwargs.setdefault(cell.seed_kw, cell.seed)
                if memoizing and cell.persist and not cell.local:
                    lookup0 = time.monotonic()
                    digest = cell_cache.digest(
                        plan.experiment, cell.key, cell.seed, cell.fn,
                        kwargs, trace
                    )
                    memo = cell_cache.lookup(digest)
                    phase_acc["cache_lookup"] += (time.monotonic()
                                                  - lookup0)
                    if memo is not None:
                        value, memo_trace, memo_metrics = memo
                        results[cell.key] = value
                        if tracing:
                            cell_traces[cell.key] = memo_trace
                            cell_metrics[cell.key] = memo_metrics
                            persist(cell.key, _wrap_traced(
                                value, memo_trace, memo_metrics
                            ))
                        else:
                            persist(cell.key, value)
                        recorded[cell.key] = {"status": CELL_CACHED}
                        cell_elapsed[cell.key] = 0.0
                        note(cell.key, CELL_CACHED, 0.0,
                             memo_metrics if tracing else None)
                        continue
                    digests[cell.key] = digest
                if cell.faults_kw is not None and plan.faults is not None:
                    kwargs.setdefault(
                        cell.faults_kw, plan.faults.derive(cell.seed)
                    )
                cell_trace = None
                if tracing or profiling:
                    cell_trace = {"config": trace, "key": cell.key,
                                  "seed": cell.seed,
                                  "profile": profile if profiling
                                  else None}
                jobs.append((cell.key, cell.fn, kwargs, cell.faults_kw,
                             cell_trace))

            phase_acc["schedule"] += (
                time.monotonic() - build0
                - (phase_acc["cache_lookup"] - cache0)
            )
            persist_flags = {cell.key: cell.persist for cell in wave}
            wave0 = time.monotonic()
            merge_wave = 0.0
            compute_wave = 0.0
            for key, outcome in backend.run_wave(jobs):
                merge0 = time.monotonic()
                compute_wave += outcome.get("elapsed", 0.0)
                if plan.faults is not None and outcome.get("fired"):
                    plan.faults.absorb(outcome["fired"])
                snapshot = None
                if "trace" in outcome:
                    # Round-trip like the value: a fresh trace and a
                    # checkpoint-replayed trace must be byte-identical.
                    cell_traces[key] = _roundtrip(outcome["trace"])
                    snapshot = _roundtrip(outcome["metrics"])
                    cell_metrics[key] = snapshot
                if "profile" in outcome:
                    # Same round-trip discipline: a serial profile and a
                    # dist-frame profile must compare byte-identical.
                    cell_profiles[key] = _roundtrip(outcome["profile"])
                if outcome["status"] == "ok":
                    value = _roundtrip(outcome["value"])
                    results[key] = value
                    recorded[key] = {"status": CELL_OK}
                    if persist_flags.get(key, True):
                        if tracing:
                            persist(key, _wrap_traced(
                                value, cell_traces.get(key), snapshot
                            ))
                        else:
                            persist(key, value)
                    if digests.get(key) is not None:
                        cell_cache.store(
                            digests[key], plan.experiment, key, value,
                            trace=cell_traces.get(key) if tracing else None,
                            metrics=snapshot if tracing else None,
                        )
                elif outcome["recoverable"]:
                    results[key] = None
                    recorded[key] = {
                        "status": CELL_FAILED, "error": outcome["chain"],
                    }
                else:
                    raise CellExecutionError(key, outcome["chain"])
                cell_elapsed[key] = outcome.get("elapsed", 0.0)
                note(key, recorded[key]["status"],
                     cell_elapsed[key], snapshot)
                merge_wave += time.monotonic() - merge0
            wave_wall = time.monotonic() - wave0
            phase_acc["merge"] += merge_wave
            residue = wave_wall - merge_wave - compute_wave
            if residue > 0:
                phase_acc["ipc"] += residue
            phase_acc["compute"] += compute_wave
    finally:
        backend.close()
        if store is not None and backend.concurrent:
            store.consolidate()

    merge0 = time.monotonic()
    for cell in plan:
        if cell.key in recorded:
            statuses[cell.key] = recorded[cell.key]
        if traces is not None and cell.key in cell_traces:
            traces[cell.key] = cell_traces[cell.key]
        if metrics is not None and cell.key in cell_metrics:
            metrics[cell.key] = cell_metrics[cell.key]
        if timings is not None and cell.key in cell_elapsed:
            timings[cell.key] = cell_elapsed[cell.key]
        if profiles is not None and cell.key in cell_profiles:
            profiles[cell.key] = cell_profiles[cell.key]
    phase_acc["merge"] += time.monotonic() - merge0
    if phases is not None:
        phases.update(
            {name: round(seconds, 6)
             for name, seconds in phase_acc.items()}
        )
    if progress is not None:
        phases_cb = getattr(progress, "phases", None)
        if phases_cb is not None:
            phases_cb(phase_acc)
    return results


def describe_plan(plan, store=None):
    """Render the cell grid without executing it (``--list-cells``).

    One row per cell: key, derived seed, dependencies, and whether the
    checkpoint already holds its value.
    """
    rows = []
    for cell in plan:
        status = "cached" if (store is not None and cell.key in store) \
            else "pending"
        deps = ", ".join(sorted(set(cell.deps.values()))) or "-"
        rows.append([cell.key, f"{cell.seed:#018x}", deps, status])
    cached = sum(1 for row in rows if row[3] == "cached")
    title = (f"{plan.experiment}: {len(rows)} cells "
             f"({cached} cached, {len(rows) - cached} pending), "
             f"root seed {plan.root_seed}")
    return format_table(["cell", "derived seed", "depends on", "status"],
                        rows, title=title)
