"""Content-addressed cell memoization: never compute the same cell twice.

fig5 re-plans its sweep per attempt and CI re-runs the same quick
profiles on every push, so the same (experiment, cell, seed, resolved
kwargs) tuple is computed over and over.  :class:`CellCache` keys a
cell's *result* by a sha256 digest of everything that determines it —
the same canonical-JSON hashing discipline the seed derivation and the
run ledger already use — and stores the value (plus its trace/metrics
envelope when tracing) under a two-level fan-out directory, one file
per cell.

Unlike a :class:`~repro.core.resilience.CheckpointStore`, which scopes
replay to one sweep via a meta fingerprint, the cache is shared across
runs and experiments: any cell whose digest matches is a hit, whether
it was computed by a cold ``repro fig5`` an hour ago or by a CI job's
previous step.  Safety comes from the digest (any knob, dep value,
seed, code identity or trace-config change produces a different key)
plus a stored *value digest* that is re-verified on every read — a
corrupted or tampered entry is detected and recomputed, never trusted.

What is deliberately *not* cached: cells of fault-armed plans (their
outcome depends on injector state, which is the point of injecting
faults), local cells (they close over live driver state), and cells
whose kwargs do not survive canonical JSON (no stable identity, no
cache).
"""

import hashlib
import json
import os

from repro.atomicio import atomic_write_json

#: Schema tag stored in every entry; bump to invalidate the world.
CACHE_FORMAT = "repro-cellcache/1"


def _canonical(obj):
    """Canonical JSON bytes: the hashing discipline used everywhere."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


def _fn_identity(fn):
    """A cell body's stable name; code moves → digests change → miss."""
    return f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"


class CellCache:
    """Content-addressed store of computed cell values.

    Counters (``hits``/``misses``/``puts``/``poisoned``) accumulate
    across every plan executed with this instance; the CLI surfaces
    them on the progress line and in the manifest's volatile timing
    section (wall-clock-adjacent bookkeeping — a warm run and a cold
    run must still compare byte-identical).
    """

    def __init__(self, root):
        self.root = os.fspath(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.poisoned = 0

    # -- keying ---------------------------------------------------------

    def digest(self, experiment, key, seed, fn, kwargs, trace=None):
        """Digest of everything that determines a cell's value.

        Returns ``None`` (uncacheable) when *kwargs* will not
        canonicalise — an injector object, a live scenario — because a
        key that silently dropped a kwarg would alias distinct cells.
        The trace config joins the material for the same reason traced
        and untraced checkpoints are incompatible: a traced entry
        carries an envelope an untraced run has no use for.
        """
        material = {
            "format": CACHE_FORMAT,
            "experiment": experiment,
            "key": key,
            "seed": seed,
            "fn": _fn_identity(fn),
            "kwargs": kwargs,
        }
        if trace is not None:
            material["trace"] = {
                "categories": (None if trace.categories is None
                               else sorted(trace.categories)),
                "max_records": trace.max_records,
            }
        try:
            return hashlib.sha256(_canonical(material)).hexdigest()
        except (TypeError, ValueError):
            return None

    def _path(self, digest):
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    # -- read/write -----------------------------------------------------

    def lookup(self, digest):
        """Return ``(value, trace, metrics)`` for a verified hit, else
        ``None``.

        The stored payload's sha256 is recomputed and checked against
        the recorded ``value_digest``: a mismatch (bit rot, a truncated
        or hand-edited file, a poisoning attempt) counts as
        ``poisoned``, the entry is treated as a miss, and the caller's
        recompute heals it in place through :meth:`store`'s atomic
        replace.
        """
        if digest is None:
            return None
        path = self._path(digest)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        payload = entry.get("payload")
        expected = entry.get("value_digest")
        if (entry.get("format") != CACHE_FORMAT or expected is None
                or hashlib.sha256(_canonical(payload)).hexdigest() != expected):
            # Deliberately NOT deleted here: two processes can detect
            # the same poisoned entry concurrently, and an unlink in
            # that window can destroy the *healed* entry a faster rival
            # already wrote.  Healing is write-only — the recompute
            # lands through :meth:`store`'s atomic tmp+rename, so
            # however many healers race, the entry converges to one
            # valid (identical, deterministic) value.
            self.poisoned += 1
            return None
        self.hits += 1
        return payload["value"], payload.get("trace"), payload.get("metrics")

    def store(self, digest, experiment, key, value,
              trace=None, metrics=None):
        """Persist a freshly computed cell value under *digest*.

        Atomic (temp + rename), so a killed run never leaves a
        half-written entry — and a half-written entry would fail the
        value-digest check anyway.
        """
        if digest is None:
            return
        payload = {"value": value}
        if trace is not None:
            payload["trace"] = trace
            payload["metrics"] = metrics
        entry = {
            "format": CACHE_FORMAT,
            "experiment": experiment,
            "key": key,
            "payload": payload,
            "value_digest": hashlib.sha256(_canonical(payload)).hexdigest(),
        }
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_json(path, entry)
        self.puts += 1

    # -- reporting ------------------------------------------------------

    def stats(self):
        """Counters for the manifest's volatile timing section."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "poisoned": self.poisoned,
        }
