"""Chaos harness: prove the distributed tier survives sabotage.

``repro chaos`` runs the same quick fig5 sweep twice — once serially
(the reference), once on a real dist deployment (a ``repro serve``
subprocess plus N ``repro worker`` subprocesses) while this module
actively attacks it:

* **worker_kill** — SIGKILL a worker mid-sweep (its leases expire and
  requeue; optionally a replacement is spawned, demonstrating
  self-healing fleet recovery);
* **heartbeat_delay** — stretch a worker's heartbeat interval past the
  lease timeout (the server revokes and requeues work the worker is
  still computing — late results must not corrupt anything);
* **frame_drop / frame_corrupt** — the worker's transport randomly
  swallows or bit-flips outgoing frames (the server detects the digest
  mismatch, drops the connection, and the lease machinery recovers);
* **partition** — SIGSTOP the server process for a spell (every
  heartbeat goes unanswered; on SIGCONT the reaper finds a world of
  expired leases).

All of it is seeded through the existing
:class:`~repro.core.resilience.FaultInjector` (the chaos kinds are
registered in ``FAULT_KINDS``), so a chaos run is *reproducible*: same
seed, same kills, same dropped frames.

The verdict is the strongest oracle the repo has: the dist run's ledger
manifest must be **byte-identical** (modulo the volatile timing
section) to the undisturbed serial run's.  Not "close", not "same
headline" — the same bytes :func:`repro.obs.ledger.manifest_bytes`
would write.  ``repro compare`` between the two manifests is the same
check with a diff attached, which is what the CI ``dist-chaos-smoke``
job runs.
"""

import json
import os
import re
import subprocess
import sys
import threading
import time

from repro.core.resilience import FaultInjector

#: Quick fig5 knob set the harness sweeps — small enough for CI, large
#: enough that batches span several leases and a mid-sweep kill always
#: has victims in flight.
CHAOS_KNOBS = dict(
    host="basicmath", attempts=2, detector_names=("lr", "nn"),
    training_benign=40, training_attack=40, attempt_samples=12,
    attempt_benign=6,
)

_LISTENING = re.compile(r"listening on ([\w.\-]+):(\d+)")


def _drain(pipe, stream, prefix):
    """Forward a child's stderr lines onto ours, tagged."""
    for line in iter(pipe.readline, ""):
        print(f"{prefix}{line.rstrip()}", file=stream, flush=True)
    pipe.close()


def _child_env():
    """Children must resolve ``repro`` exactly like this process."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    parts = [p for p in (env.get("PYTHONPATH") or "").split(os.pathsep)
             if p]
    if src not in parts:
        parts.insert(0, src)
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def launch_server(lease_timeout=1.0, attempt_budget=3, stream=None,
                  startup_timeout=30.0, journal=None):
    """Spawn ``repro serve --port 0``; returns ``(proc, (host, port))``.

    The harness learns the bound port by parsing the server's
    "listening on HOST:PORT" line, then keeps draining its stderr in a
    daemon thread so server logs interleave with the harness's own.
    """
    stream = stream if stream is not None else sys.stderr
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
           "--lease-timeout", str(lease_timeout),
           "--attempt-budget", str(attempt_budget)]
    if journal:
        cmd += ["--journal", str(journal)]
    proc = subprocess.Popen(
        cmd, stderr=subprocess.PIPE, text=True, env=_child_env(),
    )
    deadline = time.monotonic() + startup_timeout
    address = None
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        print(f"  [serve] {line.rstrip()}", file=stream, flush=True)
        match = _LISTENING.search(line)
        if match:
            address = (match.group(1), int(match.group(2)))
            break
    if address is None:
        proc.kill()
        raise RuntimeError("dist server never reported its port")
    threading.Thread(target=_drain, args=(proc.stderr, stream, "  [serve] "),
                     daemon=True).start()
    return proc, address


def launch_worker(address, worker_id, chaos=None, stream=None):
    """Spawn one ``repro worker --connect`` subprocess."""
    stream = stream if stream is not None else sys.stderr
    host, port = address
    cmd = [sys.executable, "-m", "repro", "worker",
           "--connect", f"{host}:{port}", "--id", worker_id]
    if chaos:
        cmd += ["--chaos", json.dumps(chaos, sort_keys=True)]
    proc = subprocess.Popen(cmd, stderr=subprocess.PIPE, text=True,
                            env=_child_env())
    threading.Thread(target=_drain,
                     args=(proc.stderr, stream, f"  [{worker_id}] "),
                     daemon=True).start()
    return proc


def _fig5_manifest(knobs, seed, backend, timings=None):
    """Run the quick fig5 sweep and build its (non-volatile) manifest."""
    from repro.core.experiments.fig5 import (
        fig5_meta,
        plan_fig5,
        run_fig5,
    )
    from repro.obs.ledger import build_manifest

    result = run_fig5(seed=seed, backend=backend, timings=timings,
                      **knobs)
    config = fig5_meta(seed=seed, **knobs)
    plan = plan_fig5(seed=seed, **knobs)
    return build_manifest("fig5", config, result, plan=plan,
                          statuses=getattr(result, "cell_status", None))


class _ChaosDriver(threading.Thread):
    """Background saboteur: kills workers and partitions the server on a
    seeded schedule while the dist sweep runs."""

    def __init__(self, harness, schedule):
        super().__init__(daemon=True)
        self.harness = harness
        self.schedule = sorted(schedule)   # [(at_s, action, arg), ...]
        self.stop_event = threading.Event()
        self.actions = []

    def run(self):
        started = time.monotonic()
        for at_s, action, arg in self.schedule:
            delay = started + at_s - time.monotonic()
            if delay > 0 and self.stop_event.wait(delay):
                return
            if self.stop_event.is_set():
                return
            try:
                getattr(self.harness, f"_do_{action}")(arg)
                self.actions.append((round(at_s, 3), action, arg))
            except Exception as exc:  # pragma: no cover - best effort
                self.harness._log(f"chaos action {action} failed: {exc}")


class ChaosHarness:
    """Orchestrate the full chaos experiment (see module docstring)."""

    def __init__(self, seed=0, workers=3, kills=1, respawn=True,
                 partition_s=0.0, heartbeat_delay_s=0.0,
                 frame_drop=0.0, frame_corrupt=0.0, lease_timeout=1.0,
                 knobs=None, ledger=None, stream=None, journal=None):
        self.seed = seed
        self.workers = max(1, workers)
        self.kills = min(kills, self.workers - 1) if self.workers > 1 \
            else 0
        self.respawn = respawn
        self.partition_s = partition_s
        self.heartbeat_delay_s = heartbeat_delay_s
        self.frame_drop = frame_drop
        self.frame_corrupt = frame_corrupt
        self.lease_timeout = lease_timeout
        self.knobs = dict(knobs or CHAOS_KNOBS)
        self.ledger = ledger
        self.journal_path = journal
        self._journal_writer = None
        self.stream = stream if stream is not None else sys.stderr
        self.server = None
        self.address = None
        self.procs = {}
        self._next_worker = self.workers
        # The root injector seeds everything: per-worker transport
        # chaos derives from it, and its own draws decide which worker
        # dies and when the partition lands.
        self.root = FaultInjector(seed=seed, rates={
            "worker_kill": 1.0 if self.kills else 0.0,
            "partition": 1.0 if partition_s else 0.0,
            "heartbeat_delay": 1.0 if heartbeat_delay_s else 0.0,
            "frame_drop": frame_drop,
            "frame_corrupt": frame_corrupt,
        })
        import random
        self._rng = random.Random(seed)

    def _log(self, message):
        print(f"repro-chaos: {message}", file=self.stream, flush=True)

    def _journal(self, kind, **fields):
        """Append one harness event to the shared fleet journal.

        The server (launched with the same ``--journal`` path) writes
        the header and its own lifecycle events; the harness appends
        its sabotage under ``source="chaos"`` — O_APPEND keeps the two
        writers' records whole, so the merged file reads as one
        timeline of cause (kill) and effect (expiry, requeue).
        """
        if self.journal_path is None:
            return
        if self._journal_writer is None:
            from repro.obs.fleet import FleetJournal

            self._journal_writer = FleetJournal(self.journal_path,
                                                source="chaos")
        self._journal_writer.append(kind, **fields)

    # -- chaos actions (called from the driver thread) -------------------

    def _do_kill(self, worker_id):
        proc = self.procs.get(worker_id)
        if proc is None or proc.poll() is not None:
            return
        proc.kill()
        proc.wait(timeout=10)
        self._log(f"SIGKILLed {worker_id}")
        self._journal("chaos.kill", worker=worker_id, signal="SIGKILL")
        if self.respawn:
            replacement = f"w{self._next_worker}"
            self._next_worker += 1
            self.procs[replacement] = launch_worker(
                self.address, replacement,
                chaos=self._worker_chaos(self._next_worker),
                stream=self.stream,
            )
            self._log(f"respawned as {replacement}")
            self._journal("chaos.respawn", worker=replacement,
                          replaces=worker_id)

    def _do_partition(self, duration_s):
        import signal

        if self.server is None or self.server.poll() is not None:
            return
        self._log(f"partitioning the server for {duration_s:.1f}s "
                  f"(SIGSTOP)")
        self._journal("chaos.partition", duration_s=duration_s,
                      signal="SIGSTOP")
        self.server.send_signal(signal.SIGSTOP)
        time.sleep(duration_s)
        self.server.send_signal(signal.SIGCONT)
        self._log("partition healed (SIGCONT)")
        self._journal("chaos.heal", signal="SIGCONT")

    # -- deployment ------------------------------------------------------

    def _worker_chaos(self, index):
        """Per-worker transport-chaos spec, derived from the root
        injector so each worker's mishaps are independent of
        scheduling."""
        spec = {"seed": self.root.derive(index * 7919 + 13).seed}
        if self.frame_drop:
            spec["frame_drop"] = self.frame_drop
        if self.frame_corrupt:
            spec["frame_corrupt"] = self.frame_corrupt
        if self.heartbeat_delay_s and index == 0:
            # One slowpoke is enough to exercise expiry + requeue; a
            # fleet of them would just serialise the sweep.
            spec["heartbeat_delay_s"] = self.heartbeat_delay_s
        return spec if len(spec) > 1 else None

    def _deploy(self):
        self.server, self.address = launch_server(
            lease_timeout=self.lease_timeout, stream=self.stream,
            journal=self.journal_path,
        )
        for index in range(self.workers):
            worker_id = f"w{index}"
            self.procs[worker_id] = launch_worker(
                self.address, worker_id,
                chaos=self._worker_chaos(index), stream=self.stream,
            )

    def _schedule(self):
        """Seeded (time offset, action, argument) list."""
        schedule = []
        victims = self._rng.sample(sorted(self.procs), k=self.kills) \
            if self.kills else []
        for victim in victims:
            schedule.append((self._rng.uniform(0.5, 2.5), "kill",
                             victim))
        if self.partition_s:
            schedule.append((self._rng.uniform(1.0, 3.0), "partition",
                             self.partition_s))
        return schedule

    def _teardown(self):
        import signal

        for proc in self.procs.values():
            if proc.poll() is None:
                proc.kill()
        if self.server is not None and self.server.poll() is None:
            # Heal any live partition first or SIGTERM queues forever.
            self.server.send_signal(signal.SIGCONT)
            self.server.terminate()
            try:
                self.server.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.server.kill()
        for proc in self.procs.values():
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
        if self._journal_writer is not None:
            self._journal_writer.close()
            self._journal_writer = None

    # -- the experiment --------------------------------------------------

    def run(self):
        """Serial reference, sabotaged dist run, byte comparison.

        Returns ``(identical, serial_manifest, dist_manifest)``.
        """
        from repro.exec.dist import DistBackend

        self._log(f"serial reference sweep (seed {self.seed})")
        serial_manifest = _fig5_manifest(self.knobs, self.seed,
                                         backend=None)

        self._log(f"deploying: 1 server + {self.workers} workers "
                  f"(lease timeout {self.lease_timeout}s)")
        self._deploy()
        driver = _ChaosDriver(self, self._schedule())
        events = []

        def on_event(kind, **info):
            events.append((kind, info))
            self._log(f"backend event: {kind} "
                      + ", ".join(f"{k}={v}" for k, v
                                  in sorted(info.items())))

        backend = DistBackend(self.address, seed=self.seed,
                              fallback=True, events=on_event,
                              stream=self.stream)
        try:
            driver.start()
            self._log("dist sweep under chaos")
            dist_manifest = _fig5_manifest(self.knobs, self.seed,
                                           backend=backend)
        finally:
            driver.stop_event.set()
            driver.join(timeout=30)
            self._teardown()

        from repro.obs.ledger import manifest_bytes

        identical = (manifest_bytes(serial_manifest)
                     == manifest_bytes(dist_manifest))
        self._log(f"chaos actions applied: {driver.actions or 'none'}")
        self._log(f"backend events: {len(events)} "
                  f"({sum(1 for k, _ in events if k == 'requeue')} "
                  f"requeue notification(s))")
        self._log("verdict: manifests byte-identical"
                  if identical else
                  "verdict: MANIFESTS DIVERGE — determinism broken")

        if self.ledger is not None:
            from repro.obs.ledger import write_manifest

            serial_path = write_manifest(
                os.path.join(self.ledger, "serial"), serial_manifest
            )
            dist_path = write_manifest(
                os.path.join(self.ledger, "dist"), dist_manifest
            )
            self._log(f"ledgers: {serial_path} vs {dist_path}")
        return identical, serial_manifest, dist_manifest


def run_chaos(**kwargs):
    """CLI entry point; returns the process exit code (0 ok, 5 diverged
    — the same code ``repro compare`` uses for divergent runs)."""
    harness = ChaosHarness(**kwargs)
    identical, _, _ = harness.run()
    return 0 if identical else 5
