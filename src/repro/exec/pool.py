"""Process-pool plumbing: shared warm pools and batched cell invocation.

Spawning a Python interpreter and importing numpy + ``repro`` costs two
orders of magnitude more than most cells take to run, so the old
pool-per-backend design spent its wall clock on process churn (the
committed ``BENCH_exec.json`` baseline showed ``--jobs 2`` *slower*
than serial).  This module keeps one warm :class:`ProcessPoolExecutor`
per worker count for the life of the driver process: workers import the
experiment modules once (in the spawn initializer, off the critical
path of the first wave) and are reused across waves, plans and
experiments.

The other spawn-era cost was one IPC round-trip per cell.
:func:`invoke_batch` is the worker-side entry point that amortises it:
a batch of cells travels in one pickle, runs back-to-back in the same
worker, and returns one list of ``(key, outcome)`` pairs.  Batching is
pure transport — each cell still runs through
:func:`repro.exec.backends.invoke_cell` with its own derived seed,
fault injector and tracer, so results are byte-identical to serial.
"""

import atexit
import os
import time

#: jobs -> live ProcessPoolExecutor.  Keyed by worker count so a
#: ``--jobs 2`` smoke and a ``--jobs 4`` sweep in one process never
#: fight over pool geometry.
_SHARED = {}


def _preload():
    """Worker initializer: pay the heavy imports once per worker.

    Runs in the spawned worker before it accepts work.  Importing the
    experiment package pulls in numpy, the simulator and the HID
    classifiers — everything a cell body could need — so the first cell
    a worker receives runs as fast as the hundredth.
    """
    import repro.core.experiments  # noqa: F401


def shared_pool(jobs):
    """Return the warm pool for *jobs* workers, creating it on first use."""
    pool = _SHARED.get(jobs)
    if pool is None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        # ``spawn`` (not ``fork``): clean interpreters, no inherited
        # locks or numpy state, identical behaviour on every platform.
        pool = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_preload,
        )
        _SHARED[jobs] = pool
    return pool


def discard_pool(jobs):
    """Drop the pool for *jobs* (after a worker crash broke it)."""
    pool = _SHARED.pop(jobs, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_all(wait=True):
    """Shut down every warm pool *now*; returns how many were reaped.

    The explicit counterpart of the ``atexit`` hook: long-lived drivers
    (the dist server's host, test suites, notebook sessions) call this
    between workloads so no spawned worker process outlives its last
    sweep.  Idempotent — a second call finds an empty registry.
    """
    count = 0
    while _SHARED:
        _, pool = _SHARED.popitem()
        pool.shutdown(wait=wait, cancel_futures=True)
        count += 1
    return count


def shutdown_pools():
    """Shut down every warm pool (atexit hook; idempotent)."""
    try:
        shutdown_all(wait=True)
    except Exception:  # pragma: no cover - interpreter teardown
        pass


atexit.register(shutdown_pools)


def _probe(delay_s):
    """Worker-side warmup probe; the sleep keeps one worker from
    draining every probe before its siblings finish spawning."""
    time.sleep(delay_s)
    return os.getpid()


def warmup(jobs, probe_delay_s=0.05):
    """Force all *jobs* workers of the shared pool to exist and report
    ``(elapsed_seconds, distinct_worker_count)``.

    Benchmarks call this to price pool startup separately from
    steady-state cell throughput; the executor itself never needs to —
    workers spin up lazily on the first wave.
    """
    started = time.monotonic()
    pool = shared_pool(jobs)
    futures = [pool.submit(_probe, probe_delay_s) for _ in range(jobs)]
    pids = {future.result() for future in futures}
    return time.monotonic() - started, len(pids)


def invoke_batch(batch):
    """Run a batch of cells in this worker; one IPC round-trip.

    *batch* is a list of ``(key, fn, kwargs, faults_kw, trace)`` jobs
    exactly as the runner built them.  Cells run in batch order (which
    is declaration order — the backend partitions contiguously), each
    through :func:`invoke_cell`, so a cell cannot tell whether it
    travelled alone or with company.
    """
    from repro.exec.backends import invoke_cell

    out = []
    for key, fn, kwargs, faults_kw, *rest in batch:
        trace = rest[0] if rest else None
        out.append((key, invoke_cell(fn, kwargs, faults_kw, trace)))
    return out
