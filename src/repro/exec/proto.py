"""Wire protocol for the distributed sweep tier.

Frames
------
Every message between the dist server, its workers and the client
backend travels as one *frame*::

    magic(2) | version(1) | length(4, big-endian) | sha256[:8] | payload

The payload is canonical UTF-8 JSON.  The digest prefix makes
corruption — bit rot, a chaos-injected byte flip, a truncated send —
*detectable*: a receiver that cannot verify a frame raises
:class:`~repro.errors.FrameError` and tears the connection down, which
is exactly the failure the lease/requeue machinery already handles.
Nothing in the system trusts a frame it cannot verify.

Jobs over JSON
--------------
The pool backend ships cells by pickling ``(fn, kwargs)``; a network
protocol must not (pickles execute code on load, and tie both ends to
one interpreter).  Instead a job is *described*: the cell body by its
``module:qualname`` (resolved by import on the worker — workers only
run code they already ship), the derived fault injector by its
``(seed, rates, max_fires)`` constructor spec, the trace config by its
``(categories, max_records)`` knobs.  Cell kwargs are JSON by
construction (the checkpoint and cell cache already require it), so
the description round-trips losslessly and the worker rebuilds the
exact job tuple :func:`repro.exec.backends.invoke_cell` expects.

Telemetry messages
------------------
Fleet telemetry reuses the same frames, not a side channel: workers
push ``stats`` frames (cumulative cells/batches/cells-per-second),
clients attach a ``cache`` counter dict to their ``submit``, and a
``status`` hello role asks the server for ``fleet`` snapshot frames
(see :mod:`repro.obs.fleet`).  All of it is additive — a PR 6 peer
that never sends them talks to this server unchanged.
"""

import hashlib
import importlib
import json
import struct

from repro.errors import FrameError, ProtocolError

#: Frame magic + protocol version; bump the version on incompatible
#: message-shape changes (peers refuse to talk across versions).
MAGIC = b"rd"
VERSION = 1

#: Header layout: magic, version, payload length, digest prefix.
_HEADER = struct.Struct("!2sBI8s")

#: Hard ceiling on one frame's payload; a length beyond this is treated
#: as corruption, not as a request to allocate gigabytes.
MAX_FRAME = 64 * 1024 * 1024

#: Digest prefix length carried in the header.
_DIGEST_BYTES = 8


def _digest(payload):
    return hashlib.sha256(payload).digest()[:_DIGEST_BYTES]


def encode_frame(message):
    """Serialise one message dict into frame bytes."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte ceiling"
        )
    return _HEADER.pack(MAGIC, VERSION, len(payload),
                        _digest(payload)) + payload


def decode_header(header):
    """Validate a header; returns the expected (length, digest)."""
    try:
        magic, version, length, digest = _HEADER.unpack(header)
    except struct.error as exc:
        raise FrameError(f"short frame header: {exc}") from exc
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise FrameError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this end speaks {VERSION}"
        )
    if length > MAX_FRAME:
        raise FrameError(
            f"frame length {length} exceeds the {MAX_FRAME}-byte ceiling"
        )
    return length, digest


def decode_payload(payload, digest):
    """Verify and parse one frame payload."""
    if _digest(payload) != digest:
        raise FrameError(
            "frame digest mismatch (corrupted or tampered payload)"
        )
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc


HEADER_SIZE = _HEADER.size


# -- blocking-socket transport (workers, client backend) ----------------

def write_frame(sock, message, lock=None):
    """Send one frame on a blocking socket (optionally under *lock*).

    The lock exists for the worker, whose heartbeat thread and compute
    loop share one socket; interleaved ``send`` calls would shear
    frames.
    """
    data = encode_frame(message)
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


def _recv_exact(sock, count):
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 16))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame"
                                  if chunks else "peer closed the "
                                  "connection")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def read_frame(sock):
    """Read one verified message from a blocking socket.

    Raises :class:`ConnectionError` on EOF and
    :class:`~repro.errors.FrameError` on a frame that fails
    verification.
    """
    length, digest = decode_header(_recv_exact(sock, HEADER_SIZE))
    return decode_payload(_recv_exact(sock, length), digest)


# -- asyncio transport (the server) -------------------------------------

async def aread_frame(reader):
    """Read one verified message from an asyncio ``StreamReader``.

    Returns ``None`` on clean EOF at a frame boundary (the peer hung
    up between messages, which is how sessions end).
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("peer closed the connection mid-header") from exc
    length, digest = decode_header(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("peer closed the connection mid-frame") from exc
    return decode_payload(payload, digest)


async def awrite_frame(writer, message):
    """Send one frame on an asyncio ``StreamWriter`` and drain."""
    writer.write(encode_frame(message))
    await writer.drain()


# -- job description ----------------------------------------------------

def _fn_ref(fn):
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise ProtocolError(
            f"cell body {fn!r} is not importable by name; distributed "
            f"cells must be module-level functions"
        )
    return f"{module}:{qualname}"


def resolve_fn(ref):
    """Import a ``module:qualname`` cell-body reference."""
    module_name, _, qualname = ref.partition(":")
    try:
        target = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as exc:
        raise ProtocolError(
            f"cannot resolve cell body {ref!r}: {exc}"
        ) from exc
    return target


def describe_job(job):
    """One runner job tuple -> a JSON-safe job description.

    *job* is ``(key, fn, kwargs, faults_kw[, trace])`` exactly as
    :func:`repro.exec.runner.execute_plan` builds it; the derived
    :class:`~repro.core.resilience.FaultInjector` (when armed) is
    lifted out of the kwargs and sent as its constructor spec.
    """
    key, fn, kwargs, faults_kw, *rest = job
    trace = rest[0] if rest else None
    kwargs = dict(kwargs)
    faults = None
    if faults_kw is not None and faults_kw in kwargs:
        injector = kwargs.pop(faults_kw)
        if injector is not None:
            faults = {
                "seed": injector.seed,
                "rates": dict(injector.rates),
                "max_fires": injector.max_fires,
            }
    described = {
        "key": key,
        "fn": _fn_ref(fn),
        "kwargs": kwargs,
        "faults_kw": faults_kw,
        "faults": faults,
    }
    if trace is not None:
        config = trace.get("config")
        spec = {
            "key": trace["key"],
            "seed": trace["seed"],
            "categories": None,
            "max_records": None,
            "traced": config is not None,
        }
        if config is not None:
            spec["categories"] = (None if config.categories is None
                                  else sorted(config.categories))
            spec["max_records"] = config.max_records
        prof = trace.get("profile")
        if prof is not None:
            spec["profile"] = {
                "subsystems": (None if prof.subsystems is None
                               else sorted(prof.subsystems)),
                "top_blocks": prof.top_blocks,
            }
        described["trace"] = spec
    try:
        json.dumps(described)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"cell {key!r} kwargs are not JSON-serialisable and cannot "
            f"travel to a remote worker: {exc}"
        ) from exc
    return described


def rebuild_job(described):
    """A job description -> the runner job tuple a worker executes."""
    kwargs = dict(described["kwargs"])
    faults_kw = described.get("faults_kw")
    spec = described.get("faults")
    if faults_kw is not None and spec is not None:
        from repro.core.resilience import FaultInjector

        kwargs[faults_kw] = FaultInjector(
            seed=spec["seed"], rates=spec["rates"],
            max_fires=spec["max_fires"],
        )
    trace = None
    spec = described.get("trace")
    if spec is not None:
        config = None
        # Envelopes from pre-profile peers have no "traced" flag but
        # always carried a live config; default accordingly.
        if spec.get("traced", True):
            from repro.obs import TraceConfig

            config = TraceConfig(
                categories=(None if spec["categories"] is None
                            else tuple(spec["categories"])),
                max_records=spec["max_records"],
            )
        trace = {
            "config": config,
            "key": spec["key"],
            "seed": spec["seed"],
        }
        prof = spec.get("profile")
        if prof is not None:
            from repro.obs.prof import ProfileConfig

            trace["profile"] = ProfileConfig(
                subsystems=(None if prof["subsystems"] is None
                            else tuple(prof["subsystems"])),
                top_blocks=prof["top_blocks"],
            )
    return (described["key"], resolve_fn(described["fn"]), kwargs,
            faults_kw, trace)
