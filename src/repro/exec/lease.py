"""Lease bookkeeping for the distributed sweep server.

Every batch the server hands a worker is covered by a :class:`Lease`:
a claim that expires unless the worker keeps renewing it with
heartbeats.  The :class:`LeaseTable` is deliberately synchronous and
clock-injected — the asyncio server drives it, but every policy
decision (when a lease is stale, where a revoked batch re-enters the
queue, when a cell's attempt budget is spent, which lease deserves a
hedge) lives here where it can be unit-tested against a fake clock
with zero concurrency.

Determinism contract: given the same sequence of grant / renew /
revoke calls at the same fake-clock times, the table produces the same
requeue order and the same ``log`` — the property the chaos
determinism tests pin down.  Revoked batches are requeued at the
*head* of the queue, split into singletons when the batch had company
(isolating a crasher without re-charging its healthy batchmates),
exactly mirroring the warm-pool backend's crash taxonomy.
"""

import dataclasses
import itertools
import time

from repro.core.resilience.checkpoint import error_chain
from repro.errors import WorkerCrashError


@dataclasses.dataclass
class Lease:
    """One outstanding claim of one batch by one worker."""

    lease_id: str
    worker_id: str
    wave_id: str
    batch: list                 # job descriptions, declaration order
    granted_at: float
    last_heartbeat: float
    hedge_of: str = None        # lease_id this one duplicates, if any

    def keys(self):
        return [job["key"] for job in self.batch]


def crash_outcome(key, attempts, reason="worker lease lost"):
    """The failed-cell outcome a cell over its attempt budget degrades
    to — same shape and taxonomy as the pool backend's crash path."""
    chain = error_chain(WorkerCrashError(
        f"{reason} running cell {key!r} ({attempts} attempts)"
    ))
    return {
        "status": "err", "chain": chain, "recoverable": True,
        "elapsed": 0.0, "type": WorkerCrashError.__name__,
    }


class LeaseTable:
    """Grant, renew, expire and hedge batch leases for one wave queue.

    The table owns the wave's pending-batch queue *and* its outstanding
    leases, so requeue position is a table decision, not scattered
    server logic.  ``attempt_budget`` caps how many times one cell may
    be re-leased after revocations before it degrades to a
    :func:`crash_outcome`; hedge leases never charge attempts (the
    original may still land).
    """

    def __init__(self, wave_id, batches, lease_timeout=5.0,
                 attempt_budget=3, clock=time.monotonic):
        self.wave_id = wave_id
        self.queue = [list(batch) for batch in batches if batch]
        self.lease_timeout = lease_timeout
        self.attempt_budget = attempt_budget
        self.clock = clock
        self.leases = {}
        self.attempts = {}
        self.done = set()
        self.log = []           # ("grant"|"renew"|"revoke"|...) tuples
        self._counter = itertools.count(1)
        self.total = sum(len(batch) for batch in self.queue)
        # Lifetime telemetry counters; fleet snapshots read these.
        self.counters = {"grants": 0, "requeues": 0, "degraded": 0,
                         "hedges": 0}

    # -- queue state ----------------------------------------------------

    @property
    def outstanding(self):
        return len(self.leases)

    @property
    def exhausted(self):
        """True when nothing is queued or leased: the wave is settled."""
        return not self.queue and not self.leases

    def pending_keys(self):
        return [job["key"] for batch in self.queue for job in batch]

    # -- grant / renew / complete ---------------------------------------

    def grant(self, worker_id):
        """Lease the next queued batch to *worker_id* (or ``None``).

        Completed keys are filtered out first — a batch whose cells all
        landed through a hedge or a late revoked-lease result simply
        evaporates.
        """
        while self.queue:
            batch = [job for job in self.queue.pop(0)
                     if job["key"] not in self.done]
            if batch:
                return self._issue(worker_id, batch, hedge_of=None)
        return None

    def _issue(self, worker_id, batch, hedge_of):
        now = self.clock()
        lease = Lease(
            lease_id=f"{self.wave_id}/L{next(self._counter)}",
            worker_id=worker_id, wave_id=self.wave_id, batch=batch,
            granted_at=now, last_heartbeat=now, hedge_of=hedge_of,
        )
        self.leases[lease.lease_id] = lease
        self.counters["hedges" if hedge_of else "grants"] += 1
        self.log.append(("hedge" if hedge_of else "grant",
                         lease.lease_id, worker_id, lease.keys()))
        return lease

    def renew(self, lease_id):
        """Record a heartbeat; unknown leases (already revoked) say so."""
        lease = self.leases.get(lease_id)
        if lease is None:
            return False
        lease.last_heartbeat = self.clock()
        self.log.append(("renew", lease_id, lease.worker_id))
        return True

    def complete(self, lease_id, keys):
        """Mark a lease's cells done and retire it.

        Returns the subset of *keys* that were not already completed by
        a rival (hedge or requeued) lease — the ones whose outcomes the
        server should actually forward.  Unknown lease ids are
        tolerated: a worker whose lease was revoked mid-cell may still
        deliver a perfectly good (deterministic) result, and discarding
        finished work would only add requeue churn.
        """
        fresh = [key for key in keys if key not in self.done]
        self.done.update(fresh)
        lease = self.leases.pop(lease_id, None)
        self.log.append(("complete", lease_id,
                         lease.worker_id if lease else None, fresh))
        return fresh

    # -- revocation / expiry --------------------------------------------

    def revoke(self, lease_id, reason="revoked"):
        """Revoke one lease and requeue its unfinished cells.

        Returns ``(requeued keys, [(key, crash outcome), ...])`` — the
        second list holds cells that spent their attempt budget and
        degrade into failed-cell outcomes instead of requeuing.  Hedge
        leases requeue nothing (their original is still live or was
        completed) and charge nothing.
        """
        lease = self.leases.pop(lease_id, None)
        if lease is None:
            return [], []
        if lease.hedge_of is not None:
            self.log.append(("drop-hedge", lease_id, lease.worker_id,
                             reason))
            return [], []
        remaining = [job for job in lease.batch
                     if job["key"] not in self.done]
        requeued, degraded = [], []
        if len(remaining) > 1:
            # Any cell may be the one that took the worker down; retry
            # them one per batch, uncharged, so the next loss names
            # exactly one suspect — the pool backend's discipline.
            for job in reversed(remaining):
                self.queue.insert(0, [job])
                requeued.append(job["key"])
            requeued.reverse()
        elif remaining:
            [job] = remaining
            key = job["key"]
            self.attempts[key] = self.attempts.get(key, 0) + 1
            if self.attempts[key] > self.attempt_budget:
                outcome = crash_outcome(key, self.attempts[key],
                                        reason=reason)
                self.done.add(key)
                degraded.append((key, outcome))
            else:
                self.queue.insert(0, [job])
                requeued.append(key)
        self.counters["requeues"] += len(requeued)
        self.counters["degraded"] += len(degraded)
        self.log.append(("revoke", lease_id, lease.worker_id, reason,
                         list(requeued)))
        return requeued, degraded

    def revoke_worker(self, worker_id, reason="worker lost"):
        """Revoke every lease held by one (vanished) worker."""
        requeued, degraded = [], []
        for lease_id in [lease_id for lease_id, lease in self.leases.items()
                         if lease.worker_id == worker_id]:
            more_requeued, more_degraded = self.revoke(lease_id,
                                                       reason=reason)
            requeued.extend(more_requeued)
            degraded.extend(more_degraded)
        return requeued, degraded

    def expired(self):
        """Leases whose heartbeat is older than the timeout, oldest
        first (stable order: the determinism tests replay this)."""
        horizon = self.clock() - self.lease_timeout
        stale = [lease for lease in self.leases.values()
                 if lease.last_heartbeat < horizon]
        stale.sort(key=lambda lease: (lease.last_heartbeat,
                                      lease.lease_id))
        return stale

    # -- hedging ---------------------------------------------------------

    def hedge_candidate(self, worker_id, hedge_after=None):
        """A duplicate lease of the stalest outstanding batch, or
        ``None``.

        Only offered when the queue is empty (the idle worker has
        nothing better to do), the candidate is not itself a hedge, is
        not already hedged, belongs to another worker, and has been
        outstanding longer than *hedge_after* (default: half the lease
        timeout) — the tail the straggler mitigation targets.
        """
        if self.queue:
            return None
        if hedge_after is None:
            hedge_after = self.lease_timeout / 2.0
        now = self.clock()
        already_hedged = {lease.hedge_of for lease in self.leases.values()
                          if lease.hedge_of is not None}
        candidates = [
            lease for lease in self.leases.values()
            if lease.hedge_of is None
            and lease.lease_id not in already_hedged
            and lease.worker_id != worker_id
            and now - lease.granted_at >= hedge_after
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda lease: (lease.granted_at,
                                           lease.lease_id))
        original = candidates[0]
        batch = [job for job in original.batch
                 if job["key"] not in self.done]
        if not batch:
            return None
        return self._issue(worker_id, batch, hedge_of=original.lease_id)

    # -- telemetry -------------------------------------------------------

    def snapshot(self):
        """JSON-safe fleet-telemetry view of this wave's lease state.

        Pure read (no log entry, no clock side effects beyond one
        ``clock()`` call for heartbeat ages) so the server can sample it
        on every status request without perturbing determinism.
        """
        now = self.clock()
        ages = [round(now - lease.last_heartbeat, 6)
                for lease in self.leases.values()]
        return {
            "total": self.total,
            "done": len(self.done),
            "queued_batches": len(self.queue),
            "queued_cells": sum(len(batch) for batch in self.queue),
            "outstanding": len(self.leases),
            "oldest_heartbeat_age_s": max(ages) if ages else None,
            "counters": dict(self.counters),
        }

    def requeue_order(self):
        """Flat ``(lease_id, key)`` requeue history — the sequence the
        chaos determinism test asserts is a pure function of (schedule,
        seed)."""
        out = []
        for entry in self.log:
            if entry[0] == "revoke":
                out.extend((entry[1], key) for key in entry[4])
        return out
