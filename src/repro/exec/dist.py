"""Distributed sweep tier: job server, workers, and the client backend.

Three roles, one wire protocol (:mod:`repro.exec.proto`):

``DistServer``
    An asyncio job server that owns submitted waves of sweep cells.
    Cells arrive as JSON job descriptions, are partitioned into
    contiguous declaration-order batches, and handed to workers under
    **leases** (:mod:`repro.exec.lease`): a lease that misses its
    heartbeats — worker SIGKILLed, wedged, partitioned away — is
    revoked and its batch requeued, bounded by a per-cell attempt
    budget that degrades to the pool backend's ``WorkerCrashError``
    taxonomy.  Idle workers hedge the stalest outstanding batch, so one
    straggler cannot hold a wave's tail hostage.

``run_worker``
    The ``repro worker --connect HOST:PORT`` loop: pull a batch, renew
    the lease from a heartbeat thread while computing, push outcomes,
    repeat.  Cells run through the exact
    :func:`~repro.exec.pool.invoke_batch` path the warm pool uses —
    same derived seeds, same fault injectors, same tracers — which is
    why dist results are byte-identical to serial ones.  A worker that
    loses the server reconnects with seeded exponential backoff
    (self-healing); one that cannot reconnect within its deadline
    exits nonzero.

``DistBackend``
    The third :class:`Backend` implementation (``--backend dist``): it
    ships each wave to the server and streams outcomes back.  A broken
    connection mid-wave resubmits only the cells still missing; a
    server unreachable past the connect deadline **degrades
    gracefully** to the local warm-pool backend with a warning —
    the sweep finishes either way — unless fallback is disabled, in
    which case :class:`~repro.errors.ServerUnreachableError` maps to
    its own CLI exit code.

Determinism: the server moves work, never values.  Each cell's outcome
is a pure function of its job description, so scheduling, requeues,
hedge races and fallbacks are all invisible in the results — the
golden-determinism tests and ``repro compare`` hold dist runs to the
serial reference byte for byte.

Fleet telemetry (:mod:`repro.obs.fleet`) rides on top of all three
roles without touching any of that: workers push periodic ``stats``
frames over the same sha256-verified protocol, the server journals
lifecycle events (joins, waves, expiries, requeues, chaos) into an
append-only JSONL file and rewrites a Prometheus text exposition
atomically, and a fourth hello role — ``status`` — serves the live
fleet snapshot that powers ``repro status``.  Telemetry frames are
deliberately exempt from the worker's chaos injector: they observe
the run, so they must not perturb the seeded mishap sequence.
"""

import itertools
import os
import socket
import sys
import time

from repro.errors import (
    FrameError,
    ProtocolError,
    ServerUnreachableError,
)
from repro.exec.lease import LeaseTable
from repro.exec.proto import (
    describe_job,
    read_frame,
    rebuild_job,
    write_frame,
)

#: Defaults shared by the CLI and the test harnesses.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_LEASE_TIMEOUT = 5.0
DEFAULT_CONNECT_DEADLINE = 10.0


def parse_address(text):
    """``HOST:PORT`` -> ``(host, port)`` (host may be omitted)."""
    if isinstance(text, (tuple, list)):
        host, port = text
        return str(host), int(port)
    host, sep, port_text = str(text).rpartition(":")
    if not sep:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad dist address {text!r} "
                         f"(expected HOST:PORT)") from None
    return host or DEFAULT_HOST, port


# ======================================================================
# Server
# ======================================================================

class _Wave:
    """One submitted wave: its lease table and its owning client."""

    def __init__(self, wave_id, table, client):
        self.wave_id = wave_id
        self.table = table
        self.client = client
        self.finished = False


class DistServer:
    """Asyncio job server for distributed sweeps (see module docstring).

    *clock* is injectable for tests; everything time-based — lease
    expiry, hedging eligibility — reads it through the lease tables.
    """

    def __init__(self, host=DEFAULT_HOST, port=0,
                 lease_timeout=DEFAULT_LEASE_TIMEOUT,
                 heartbeat_interval=None, attempt_budget=3,
                 batch_size=None, hedge=True, clock=time.monotonic,
                 stream=None, journal=None, metrics_out=None,
                 stats_interval=1.0):
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = (heartbeat_interval
                                   if heartbeat_interval is not None
                                   else max(0.05, lease_timeout / 4.0))
        self.attempt_budget = attempt_budget
        self.batch_size = batch_size
        self.hedge = hedge
        self.clock = clock
        self.stream = stream if stream is not None else sys.stderr
        self._server = None
        self._waves = {}
        self._workers = {}
        self._idle = []
        self._reaper = None
        self.stats = {"waves": 0, "batches": 0, "results": 0,
                      "requeues": 0, "expiries": 0, "hedges": 0,
                      "degraded": 0, "bad_frames": 0}
        # Fleet telemetry (all optional; None everywhere = PR 6 server).
        self.metrics_out = metrics_out
        self.stats_interval = max(0.05, float(stats_interval))
        self._started_at = self.clock()
        self._worker_stats = {}     # worker_id -> latest stats frame
        self._cache_stats = None    # latest client-reported cache dict
        self._last_sample = None
        self.journal = None
        if journal is not None:
            from repro.obs.fleet import FleetJournal

            self.journal = FleetJournal(journal, clock=self.clock,
                                        source="server")

    def _log(self, message):
        print(f"repro-dist: {message}", file=self.stream, flush=True)

    def _journal(self, kind, **fields):
        if self.journal is not None:
            self.journal.append(kind, **fields)

    # -- lifecycle ------------------------------------------------------

    async def start(self):
        import asyncio

        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.ensure_future(self._reap_loop())
        self._log(f"listening on {self.host}:{self.port}")
        self._started_at = self.clock()
        self._journal("server.listening", host=self.host, port=self.port,
                      lease_timeout=self.lease_timeout, pid=os.getpid())
        self._write_metrics()
        return self

    async def serve_forever(self):
        async with self._server:
            await self._server.serve_forever()

    async def stop(self):
        if self._reaper is not None:
            self._reaper.cancel()
        for session in list(self._workers.values()):
            await self._send(session, {"type": "shutdown"})
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def run(self):
        """Blocking entry point (``repro serve``)."""
        import asyncio

        async def main():
            await self.start()
            try:
                await self.serve_forever()
            except asyncio.CancelledError:  # pragma: no cover
                pass

        try:
            asyncio.run(main())
        except KeyboardInterrupt:  # pragma: no cover - interactive
            self._log("interrupted; shutting down")
        return 0

    # -- session plumbing -----------------------------------------------

    async def _send(self, session, message):
        import asyncio

        try:
            async with session["wlock"]:
                from repro.exec.proto import awrite_frame

                await awrite_frame(session["writer"], message)
            return True
        except (ConnectionError, OSError, asyncio.CancelledError):
            return False

    async def _handle(self, reader, writer):
        import asyncio

        from repro.exec.proto import aread_frame

        session = {"reader": reader, "writer": writer,
                   "wlock": asyncio.Lock()}
        try:
            hello = await aread_frame(reader)
        except FrameError:
            self.stats["bad_frames"] += 1
            self._journal("frame.bad", role="hello")
            hello = None
        if not isinstance(hello, dict) or hello.get("type") != "hello":
            writer.close()
            return
        await self._send(session, {"type": "welcome",
                                   "server": "repro-dist",
                                   "lease_timeout": self.lease_timeout})
        role = hello.get("role")
        try:
            if role == "worker":
                await self._serve_worker(session, hello)
            elif role == "client":
                await self._serve_client(session)
            elif role == "status":
                await self._serve_status(session)
            else:
                writer.close()
        except asyncio.CancelledError:
            # Loop shutdown cancels live session tasks; that is an
            # orderly end, not an error to surface.
            pass

    # -- worker side ----------------------------------------------------

    async def _serve_worker(self, session, hello):
        from repro.exec.proto import aread_frame

        worker_id = str(hello.get("worker_id")
                        or f"worker-{id(session) & 0xffff:04x}")
        session["worker_id"] = worker_id
        self._workers[worker_id] = session
        stats = self._worker_stats.setdefault(worker_id, {
            "cells": 0, "batches": 0, "cells_per_s": None,
        })
        stats["last_seen"] = self.clock()
        stats["pid"] = hello.get("pid")
        stats["_journaled_at"] = None
        self._log(f"worker {worker_id} joined "
                  f"({len(self._workers)} connected)")
        self._journal("worker.join", worker=worker_id,
                      pid=hello.get("pid"),
                      connected=len(self._workers))
        try:
            while True:
                try:
                    message = await aread_frame(session["reader"])
                except FrameError as exc:
                    # A corrupted frame poisons the whole stream (we
                    # cannot find the next frame boundary): drop the
                    # connection; the worker reconnects, its leases
                    # are revoked below and requeued.
                    self.stats["bad_frames"] += 1
                    self._journal("frame.bad", role="worker",
                                  worker=worker_id, error=str(exc))
                    self._log(f"worker {worker_id}: bad frame ({exc}); "
                              f"dropping connection")
                    break
                if message is None:
                    break
                stats["last_seen"] = self.clock()
                kind = message.get("type")
                if kind == "ready":
                    if session not in self._idle:
                        self._idle.append(session)
                    await self._pump()
                elif kind == "heartbeat":
                    self._renew(message.get("lease_id"))
                elif kind == "stats":
                    self._absorb_stats(worker_id, message)
                elif kind == "result":
                    await self._absorb_result(worker_id, message)
                    await self._pump()
        except (ConnectionError, OSError):
            pass
        finally:
            self._workers.pop(worker_id, None)
            if session in self._idle:
                self._idle.remove(session)
            await self._revoke_worker(worker_id)
            self._log(f"worker {worker_id} left "
                      f"({len(self._workers)} connected)")
            self._journal("worker.leave", worker=worker_id,
                          connected=len(self._workers))

    def _absorb_stats(self, worker_id, message):
        """Fold one worker ``stats`` frame into the fleet view; journal
        it at most once per ``stats_interval`` per worker."""
        stats = self._worker_stats.setdefault(worker_id, {})
        for field in ("cells", "batches", "cells_per_s", "pid"):
            if field in message:
                stats[field] = message[field]
        now = self.clock()
        last = stats.get("_journaled_at")
        if last is None or now - last >= self.stats_interval:
            stats["_journaled_at"] = now
            self._journal("worker.stats", worker=worker_id,
                          cells=stats.get("cells", 0),
                          batches=stats.get("batches", 0),
                          cells_per_s=stats.get("cells_per_s"))

    def _renew(self, lease_id):
        wave = self._wave_of(lease_id)
        if wave is not None:
            wave.table.renew(lease_id)

    def _wave_of(self, lease_id):
        if not isinstance(lease_id, str):
            return None
        wave_id = lease_id.rsplit("/", 1)[0]
        return self._waves.get(wave_id)

    async def _absorb_result(self, worker_id, message):
        lease_id = message.get("lease_id")
        wave = self._wave_of(lease_id)
        if wave is None:
            return
        outcomes = {str(key): outcome
                    for key, outcome in message.get("outcomes") or []}
        fresh = wave.table.complete(lease_id, list(outcomes))
        self.stats["results"] += len(fresh)
        for key in fresh:
            await self._send(wave.client, {
                "type": "outcome", "wave_id": wave.wave_id, "key": key,
                "outcome": outcomes[key], "worker_id": worker_id,
            })
        await self._maybe_finish(wave)

    async def _revoke_worker(self, worker_id):
        reason = f"worker {worker_id} lost"
        for wave in list(self._waves.values()):
            held = [lease.lease_id
                    for lease in wave.table.leases.values()
                    if lease.worker_id == worker_id]
            if held:
                # A vanished worker expires its leases exactly like a
                # missed heartbeat would have — journal it under the
                # same kind so the chaos timeline reads uniformly.
                self.stats["expiries"] += len(held)
                self._journal("lease.expired", wave=wave.wave_id,
                              worker=worker_id, leases=held,
                              reason=reason)
            requeued, degraded = wave.table.revoke_worker(
                worker_id, reason=reason
            )
            await self._after_revocation(wave, requeued, degraded,
                                         reason)
        await self._pump()

    async def _after_revocation(self, wave, requeued, degraded, reason):
        if requeued:
            self.stats["requeues"] += len(requeued)
            self._journal("lease.requeue", wave=wave.wave_id,
                          keys=list(requeued), reason=reason)
            await self._send(wave.client, {
                "type": "requeued", "wave_id": wave.wave_id,
                "keys": requeued, "reason": reason,
            })
        for key, outcome in degraded:
            self.stats["degraded"] += 1
            self._journal("cell.degraded", wave=wave.wave_id, key=key,
                          reason=reason)
            await self._send(wave.client, {
                "type": "outcome", "wave_id": wave.wave_id, "key": key,
                "outcome": outcome, "worker_id": None,
            })
        await self._maybe_finish(wave)

    # -- client side ----------------------------------------------------

    async def _serve_client(self, session):
        from repro.exec.proto import aread_frame

        owned = []
        try:
            while True:
                try:
                    message = await aread_frame(session["reader"])
                except FrameError as exc:
                    self.stats["bad_frames"] += 1
                    self._journal("frame.bad", role="client",
                                  error=str(exc))
                    self._log(f"client: bad frame ({exc}); "
                              f"dropping connection")
                    break
                if message is None:
                    break
                if message.get("type") != "submit":
                    await self._send(session, {
                        "type": "error",
                        "error": f"unexpected {message.get('type')!r}",
                    })
                    continue
                wave_id = str(message.get("wave_id"))
                if wave_id in self._waves:
                    await self._send(session, {
                        "type": "error",
                        "error": f"duplicate wave id {wave_id!r}",
                    })
                    continue
                wave = self._admit(wave_id, message, session)
                owned.append(wave)
                await self._pump()
        except (ConnectionError, OSError):
            pass
        finally:
            # An orphaned wave has nobody to stream outcomes to; drop
            # it.  Workers still computing its batches deliver results
            # into the void, which is safe — cells are deterministic
            # and the client recomputes on its next submission.
            for wave in owned:
                self._waves.pop(wave.wave_id, None)

    def _admit(self, wave_id, message, session):
        jobs = message.get("jobs") or []
        batches = self._partition(jobs, message.get("batch_size"))
        table = LeaseTable(
            wave_id, batches, lease_timeout=self.lease_timeout,
            attempt_budget=self.attempt_budget, clock=self.clock,
        )
        wave = _Wave(wave_id, table, session)
        self._waves[wave_id] = wave
        self.stats["waves"] += 1
        cache = message.get("cache")
        if isinstance(cache, dict):
            self._cache_stats = cache
        self._log(f"wave {wave_id}: {len(jobs)} cells in "
                  f"{len(batches)} batches")
        self._journal("wave.submit", wave=wave_id, cells=len(jobs),
                      batches=len(batches),
                      **({"cache": cache} if isinstance(cache, dict)
                         else {}))
        return wave

    def _partition(self, jobs, batch_size):
        """Contiguous declaration-order batches (the pool's sizing rule,
        against the live worker count)."""
        size = batch_size or self.batch_size
        if size is None:
            width = max(1, len(self._workers))
            size = max(1, -(-len(jobs) // (2 * width)))
        return [jobs[i:i + size] for i in range(0, len(jobs), size)]

    async def _maybe_finish(self, wave):
        if wave.finished:
            return
        table = wave.table
        if len(table.done) >= table.total and table.exhausted:
            wave.finished = True
            self._waves.pop(wave.wave_id, None)
            await self._send(wave.client, {"type": "wave_done",
                                           "wave_id": wave.wave_id})
            self._log(f"wave {wave.wave_id}: done "
                      f"({self.stats['requeues']} requeues, "
                      f"{self.stats['hedges']} hedges so far)")
            self._journal("wave.done", wave=wave.wave_id,
                          cells=table.total,
                          counters=dict(table.counters))

    # -- scheduling -----------------------------------------------------

    async def _pump(self):
        """Match idle workers with queued (or hedgeable) batches."""
        while self._idle:
            session = self._idle[0]
            lease = self._next_lease(session.get("worker_id", "?"))
            if lease is None:
                return
            self._idle.pop(0)
            self.stats["batches"] += 1
            if lease.hedge_of is not None:
                self.stats["hedges"] += 1
                self._journal("lease.hedge", lease=lease.lease_id,
                              of=lease.hedge_of,
                              worker=lease.worker_id)
            sent = await self._send(session, {
                "type": "batch", "lease_id": lease.lease_id,
                "jobs": lease.batch,
                "heartbeat_interval": self.heartbeat_interval,
            })
            if not sent:
                wave = self._wave_of(lease.lease_id)
                if wave is not None:
                    requeued, degraded = wave.table.revoke(
                        lease.lease_id, reason="dispatch failed"
                    )
                    await self._after_revocation(
                        wave, requeued, degraded, "dispatch failed"
                    )

    def _next_lease(self, worker_id):
        for wave in self._waves.values():
            lease = wave.table.grant(worker_id)
            if lease is not None:
                return lease
        if self.hedge:
            for wave in self._waves.values():
                lease = wave.table.hedge_candidate(worker_id)
                if lease is not None:
                    return lease
        return None

    # -- lease reaping --------------------------------------------------

    async def _reap_loop(self):
        import asyncio

        interval = max(0.02, self.lease_timeout / 4.0)
        while True:
            await asyncio.sleep(interval)
            await self.reap()
            self._sample()

    async def reap(self):
        """Revoke every lease whose heartbeat went stale; requeue."""
        for wave in list(self._waves.values()):
            for lease in wave.table.expired():
                reason = f"lease expired on {lease.worker_id}"
                self.stats["expiries"] += 1
                self._journal("lease.expired", wave=wave.wave_id,
                              worker=lease.worker_id,
                              leases=[lease.lease_id], reason=reason)
                requeued, degraded = wave.table.revoke(
                    lease.lease_id, reason=reason,
                )
                self._log(f"lease {lease.lease_id} expired on "
                          f"{lease.worker_id}; requeued {requeued}")
                await self._after_revocation(wave, requeued, degraded,
                                             reason)
        await self._pump()

    # -- fleet telemetry ------------------------------------------------

    def fleet_snapshot(self):
        """The live fleet view ``repro status`` renders (JSON-safe)."""
        now = self.clock()
        workers = {}
        for worker_id, stats in self._worker_stats.items():
            if worker_id not in self._workers:
                continue        # disconnected; leases already revoked
            last_seen = stats.get("last_seen")
            workers[worker_id] = {
                "cells": stats.get("cells", 0),
                "batches": stats.get("batches", 0),
                "cells_per_s": stats.get("cells_per_s"),
                "pid": stats.get("pid"),
                "heartbeat_age_s": (round(now - last_seen, 6)
                                    if last_seen is not None else None),
                "idle": self._workers[worker_id] in self._idle,
            }
        waves = {wave_id: wave.table.snapshot()
                 for wave_id, wave in self._waves.items()}
        snapshot = {
            "server": {
                "host": self.host,
                "port": self.port,
                "lease_timeout": self.lease_timeout,
                "uptime_s": round(now - self._started_at, 6),
                "workers": len(self._workers),
                "waves": len(self._waves),
                "queued_cells": sum(info["queued_cells"]
                                    for info in waves.values()),
                "outstanding_leases": sum(info["outstanding"]
                                          for info in waves.values()),
            },
            "stats": dict(self.stats),
            "workers": workers,
            "waves": waves,
        }
        if self._cache_stats is not None:
            snapshot["cache"] = dict(self._cache_stats)
        return snapshot

    def _write_metrics(self):
        """Atomically rewrite the Prometheus exposition file."""
        if self.metrics_out is None:
            return
        from repro.atomicio import atomic_write_text
        from repro.obs.fleet import render_prometheus

        atomic_write_text(self.metrics_out,
                          render_prometheus(self.fleet_snapshot()))

    def _sample(self):
        """Journal one ``fleet.sample`` + refresh metrics-out, at most
        once per ``stats_interval`` (piggybacks on the reap loop)."""
        if self.journal is None and self.metrics_out is None:
            return
        now = self.clock()
        if (self._last_sample is not None
                and now - self._last_sample < self.stats_interval):
            return
        self._last_sample = now
        snapshot = self.fleet_snapshot()
        self._journal("fleet.sample", server=snapshot["server"],
                      stats=snapshot["stats"])
        self._write_metrics()

    # -- status side ----------------------------------------------------

    async def _serve_status(self, session):
        """Answer ``status`` requests with live fleet snapshots
        (``repro status`` polls this; one request per frame)."""
        from repro.exec.proto import aread_frame

        while True:
            try:
                message = await aread_frame(session["reader"])
            except FrameError:
                self.stats["bad_frames"] += 1
                break
            if message is None:
                break
            if message.get("type") != "status":
                await self._send(session, {
                    "type": "error",
                    "error": f"unexpected {message.get('type')!r}",
                })
                continue
            await self._send(session, {"type": "fleet",
                                       "snapshot": self.fleet_snapshot()})


# ======================================================================
# Worker
# ======================================================================

def _chaos_injector(chaos):
    """Build the worker's seeded chaos injector from its spec dict."""
    if not chaos:
        return None
    from repro.core.resilience import FaultInjector

    rates = {kind: chaos[kind] for kind in ("frame_drop", "frame_corrupt")
             if chaos.get(kind)}
    if not rates and not chaos.get("heartbeat_delay_s"):
        return None
    return FaultInjector(seed=chaos.get("seed", 0), rates=rates)


def _chaos_send(sock, message, lock, injector, log=None):
    """Send one frame through the (optional) chaos gauntlet.

    ``frame_drop`` swallows the frame (the server sees silence — the
    lease expiry path); ``frame_corrupt`` flips one payload byte (the
    server sees a digest mismatch — the bad-frame path).  Both draw
    from the worker's own derived injector, so a chaos run's mishaps
    are a pure function of (worker id, seed).
    """
    if injector is None:
        write_frame(sock, message, lock=lock)
        return
    context = message.get("type", "?")
    if injector.should_fire("frame_drop", context):
        if log:
            log(f"chaos: dropped {context} frame")
        return
    from repro.exec.proto import encode_frame

    data = encode_frame(message)
    if injector.should_fire("frame_corrupt", context):
        index = len(data) - 1 - (injector.fired["frame_corrupt"]
                                 % max(1, len(data) // 2))
        data = data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1:]
        if log:
            log(f"chaos: corrupted {context} frame")
    with lock:
        sock.sendall(data)


def run_worker(address, worker_id=None, reconnect_deadline=30.0,
               seed=0, chaos=None, stream=None):
    """The ``repro worker`` loop: pull batches until shut down.

    Returns 0 on an orderly shutdown, 1 when the server stayed
    unreachable past *reconnect_deadline* (per outage; the clock
    resets after every successful connection — that is what makes the
    worker self-healing rather than merely retrying).
    """
    import threading

    from repro.core.resilience.retry import RetryPolicy

    stream = stream if stream is not None else sys.stderr
    host, port = parse_address(address)
    worker_id = worker_id or f"w{os.getpid()}"
    injector = _chaos_injector(chaos)
    heartbeat_delay = float((chaos or {}).get("heartbeat_delay_s") or 0.0)
    policy = RetryPolicy(max_attempts=1_000_000, base_delay=0.1,
                         multiplier=2.0, max_delay=2.0, jitter=0.25,
                         seed=seed)
    import random as _random
    rng = _random.Random(seed)

    def log(message):
        print(f"repro-worker[{worker_id}]: {message}", file=stream,
              flush=True)

    # Lifetime work totals; survive reconnects so the fleet view shows
    # cumulative cells/s per worker identity, not per connection.
    totals = {"cells": 0, "batches": 0, "busy_s": 0.0}
    outage_started = None
    attempt = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            now = time.monotonic()
            outage_started = outage_started or now
            if now - outage_started > reconnect_deadline:
                log(f"server unreachable for "
                    f"{now - outage_started:.1f}s; giving up ({exc})")
                return 1
            attempt += 1
            time.sleep(policy.delay_for(min(attempt, 8), rng))
            continue
        outage_started = None
        attempt = 0
        sock.settimeout(None)
        lock = threading.Lock()
        try:
            code = _worker_session(sock, worker_id, lock, injector,
                                   heartbeat_delay, log, totals)
            if code is not None:
                return code
        except (ConnectionError, OSError, FrameError) as exc:
            log(f"connection lost ({exc}); reconnecting")
        finally:
            try:
                sock.close()
            except OSError:
                pass


def _worker_session(sock, worker_id, lock, injector, heartbeat_delay,
                    log, totals=None):
    """One connected stint; returns an exit code or None to reconnect."""
    import threading

    totals = totals if totals is not None else {"cells": 0, "batches": 0,
                                                "busy_s": 0.0}
    write_frame(sock, {"type": "hello", "role": "worker",
                       "worker_id": worker_id, "pid": os.getpid()},
                lock=lock)
    welcome = read_frame(sock)
    if welcome.get("type") != "welcome":
        raise ProtocolError(f"expected welcome, got {welcome!r}")
    log(f"connected (lease timeout "
        f"{welcome.get('lease_timeout', '?')}s)")

    def send_stats():
        # Telemetry frames bypass the chaos injector on purpose: they
        # observe the run and must not shift the seeded sequence of
        # dropped/corrupted work frames.  Best-effort; a dead socket
        # surfaces on the next work frame anyway.
        busy = totals["busy_s"]
        rate = round(totals["cells"] / busy, 6) if busy > 0 else None
        try:
            write_frame(sock, {"type": "stats",
                               "worker_id": worker_id,
                               "cells": totals["cells"],
                               "batches": totals["batches"],
                               "cells_per_s": rate,
                               "pid": os.getpid()}, lock=lock)
        except OSError:
            pass

    send_stats()
    while True:
        write_frame(sock, {"type": "ready"}, lock=lock)
        message = read_frame(sock)
        kind = message.get("type")
        if kind == "shutdown":
            log("server shut down; exiting")
            return 0
        if kind != "batch":
            raise ProtocolError(f"expected batch, got {kind!r}")
        lease_id = message["lease_id"]
        interval = float(message.get("heartbeat_interval") or 1.0)
        jobs = [rebuild_job(described) for described in message["jobs"]]
        stop = threading.Event()

        def beat():
            while not stop.wait(interval + heartbeat_delay):
                try:
                    _chaos_send(sock, {"type": "heartbeat",
                                       "lease_id": lease_id},
                                lock, injector, log=log)
                except OSError:
                    return
                send_stats()

        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        started = time.monotonic()
        try:
            from repro.exec.pool import invoke_batch

            outcomes = invoke_batch(jobs)
        finally:
            stop.set()
            beater.join(timeout=2.0)
        totals["busy_s"] += time.monotonic() - started
        totals["cells"] += len(outcomes)
        totals["batches"] += 1
        _chaos_send(sock, {"type": "result", "lease_id": lease_id,
                           "outcomes": [[key, outcome]
                                        for key, outcome in outcomes]},
                    lock, injector, log=log)
        send_stats()


# ======================================================================
# Client backend
# ======================================================================

class DistBackend:
    """Run waves on a remote dist server (``--backend dist``).

    Satisfies the same backend contract as
    :class:`~repro.exec.backends.ProcessPoolBackend`: ``run_wave``
    yields ``(key, outcome)`` in arrival order, ``concurrent`` steers
    the runner to per-cell checkpoint shards.  Resilience ladder, top
    to bottom:

    1. connection breaks mid-wave → reconnect (seeded exponential
       backoff) and resubmit only the cells still missing;
    2. server unreachable past ``connect_deadline`` → degrade to the
       local warm-pool backend with a warning (sticky for the rest of
       the sweep), so the sweep *finishes*;
    3. fallback disabled → :class:`~repro.errors.
       ServerUnreachableError`, CLI exit code 6.
    """

    concurrent = True

    def __init__(self, address, seed=0, fallback=True, fallback_jobs=2,
                 connect_deadline=DEFAULT_CONNECT_DEADLINE,
                 batch_size=None, events=None, stream=None,
                 cache_stats=None):
        self.address = parse_address(address)
        # Optional zero-arg callable returning the client's cell-cache
        # counters ({hits, misses, puts, poisoned}); shipped with each
        # submit so the server journal sees cache behaviour too.
        self.cache_stats = cache_stats
        self.seed = seed
        self.fallback = fallback
        self.fallback_jobs = max(1, fallback_jobs)
        self.jobs = self.fallback_jobs
        self.connect_deadline = connect_deadline
        self.batch_size = batch_size
        self.events = events
        self.stream = stream if stream is not None else sys.stderr
        self._sock = None
        self._fallback_backend = None
        self._label = "sweep"
        self._wave_counter = itertools.count(1)
        from repro.core.resilience.retry import RetryPolicy
        import random as _random

        self._policy = RetryPolicy(max_attempts=1_000_000,
                                   base_delay=0.1, multiplier=2.0,
                                   max_delay=1.0, jitter=0.25, seed=seed)
        self._rng = _random.Random(seed)

    # -- runner hooks ---------------------------------------------------

    def bind(self, plan):
        """Label waves with the experiment (runner calls this)."""
        self._label = plan.experiment

    def close(self):
        self._disconnect()
        if self._fallback_backend is not None:
            self._fallback_backend.close()

    # -- events / logging -----------------------------------------------

    def _event(self, kind, **info):
        if self.events is not None:
            self.events(kind, **info)

    def _warn(self, message):
        print(f"repro-dist: {message}", file=self.stream, flush=True)

    # -- connection management ------------------------------------------

    def _disconnect(self):
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connected(self):
        if self._sock is not None:
            return self._sock
        deadline = time.monotonic() + self.connect_deadline
        attempt = 0
        last_error = None
        while True:
            try:
                sock = socket.create_connection(self.address,
                                                timeout=5.0)
            except OSError as exc:
                last_error = exc
            else:
                try:
                    sock.settimeout(None)
                    write_frame(sock, {"type": "hello",
                                       "role": "client",
                                       "pid": os.getpid()})
                    welcome = read_frame(sock)
                    if welcome.get("type") != "welcome":
                        raise ProtocolError(
                            f"expected welcome, got {welcome!r}"
                        )
                except (OSError, FrameError, ProtocolError) as exc:
                    last_error = exc
                    try:
                        sock.close()
                    except OSError:
                        pass
                else:
                    if attempt:
                        self._event("reconnect", attempts=attempt + 1)
                    self._sock = sock
                    return sock
            attempt += 1
            delay = self._policy.delay_for(min(attempt, 8), self._rng)
            if time.monotonic() + delay > deadline:
                raise ServerUnreachableError(
                    f"dist server {self.address[0]}:{self.address[1]} "
                    f"unreachable within {self.connect_deadline:.1f}s "
                    f"({last_error})"
                )
            time.sleep(delay)

    # -- degradation -----------------------------------------------------

    def _degrade(self, reason):
        from repro.exec.backends import ProcessPoolBackend, SerialBackend

        self._disconnect()
        self._warn(f"degrading to the local "
                   f"{'warm-pool' if self.fallback_jobs > 1 else 'serial'}"
                   f" backend: {reason}")
        self._event("fallback", reason=str(reason))
        if self.fallback_jobs > 1:
            self._fallback_backend = ProcessPoolBackend(self.fallback_jobs)
        else:
            self._fallback_backend = SerialBackend()
        return self._fallback_backend

    # -- the backend contract -------------------------------------------

    def run_wave(self, jobs):
        """Yield ``(key, outcome)`` as the server streams them back."""
        jobs = list(jobs)
        if not jobs:
            return
        if self._fallback_backend is not None:
            yield from self._fallback_backend.run_wave(jobs)
            return
        original = {}
        remaining = {}
        for job in jobs:
            described = describe_job(job)
            original[described["key"]] = job
            remaining[described["key"]] = described

        while remaining:
            try:
                sock = self._ensure_connected()
            except ServerUnreachableError as exc:
                if not self.fallback:
                    raise
                backend = self._degrade(exc)
                yield from backend.run_wave(
                    [original[key] for key in remaining]
                )
                return
            wave_id = (f"{self._label}-{os.getpid()}-"
                       f"{next(self._wave_counter)}")
            submit = {
                "type": "submit", "wave_id": wave_id,
                "jobs": list(remaining.values()),
                "batch_size": self.batch_size,
            }
            if self.cache_stats is not None:
                try:
                    submit["cache"] = dict(self.cache_stats())
                except Exception:       # telemetry must never sink a wave
                    pass
            try:
                write_frame(sock, submit)
                while remaining:
                    message = read_frame(sock)
                    kind = message.get("type")
                    if kind == "outcome":
                        key = message["key"]
                        if key in remaining:
                            del remaining[key]
                            yield key, message["outcome"]
                    elif kind == "requeued":
                        self._event("requeue",
                                    keys=message.get("keys") or [],
                                    reason=message.get("reason"))
                    elif kind == "wave_done":
                        break
                    elif kind == "error":
                        raise ProtocolError(message.get("error")
                                            or "server error")
            except (ConnectionError, OSError, FrameError) as exc:
                self._disconnect()
                self._warn(f"connection lost mid-wave ({exc}); "
                           f"resubmitting {len(remaining)} cell(s)")
                self._event("resubmit", cells=len(remaining))


# ======================================================================
# Status client
# ======================================================================

def fleet_status(address, timeout=5.0):
    """Fetch one live fleet snapshot from a dist server.

    The ``repro status`` primitive: connect with the ``status`` hello
    role, ask once, return the snapshot dict.  Raises
    :class:`~repro.errors.ServerUnreachableError` when the server
    cannot be reached or does not answer in *timeout* seconds.
    """
    host, port = parse_address(address)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ServerUnreachableError(
            f"dist server {host}:{port} unreachable ({exc})"
        ) from exc
    try:
        sock.settimeout(timeout)
        write_frame(sock, {"type": "hello", "role": "status",
                           "pid": os.getpid()})
        welcome = read_frame(sock)
        if welcome.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome!r}")
        write_frame(sock, {"type": "status"})
        message = read_frame(sock)
        if message.get("type") != "fleet":
            raise ProtocolError(f"expected fleet, got {message!r}")
        return message["snapshot"]
    except (OSError, FrameError) as exc:
        raise ServerUnreachableError(
            f"dist server {host}:{port} did not answer a status "
            f"request ({exc})"
        ) from exc
    finally:
        try:
            sock.close()
        except OSError:
            pass
