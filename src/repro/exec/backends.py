"""Execution backends: where a plan's cells actually run.

``SerialBackend`` runs cells in declaration order in the driver process
— the zero-dependency fallback, and the reference a parallel run must
match byte-for-byte.  ``ProcessPoolBackend`` fans a wave's cells out
over a spawn-based process pool with a bounded number of in-flight
cells; a crashed worker surfaces as a typed transient
:class:`~repro.errors.WorkerCrashError` (absorbed into a partial report
by the same machinery that absorbs injected faults), never as a hung
pool.

Both backends speak the same outcome protocol, produced by
:func:`invoke_cell`::

    {"status": "ok",  "value": ..., "elapsed": s, "fired": {...}}
    {"status": "err", "chain": "...", "recoverable": bool, ...}

so the runner upstream cannot tell them apart — which is the point.
"""

import time

from repro.core.resilience import RECOVERABLE
from repro.core.resilience.checkpoint import error_chain
from repro.errors import WorkerCrashError
from repro.obs.tracer import Tracer, activate


def invoke_cell(fn, kwargs, faults_kw=None, trace=None):
    """Run one cell body and normalise the outcome (worker entry point).

    Runs in the worker process under ``ProcessPoolBackend`` — the
    reason errors come back as data: a reconstructed exception would
    have to survive pickling, a chain string always does.  The derived
    fault injector's fired counts ride along so the driver can fold
    them into the root injector's telemetry.

    *trace* (``{"config": TraceConfig, "key": ..., "seed": ...}``)
    activates a per-cell :class:`~repro.obs.Tracer` around the body;
    the recorded spans and the metrics snapshot travel back in the
    outcome — they are virtual-timed, so the driver merges identical
    traces whether the cell ran here or in a pool worker.
    """
    injector = kwargs.get(faults_kw) if faults_kw else None
    tracer = None
    if trace is not None:
        tracer = Tracer(trace["config"])
        tracer.begin("exec.cell", "exec", key=trace["key"],
                     seed=f"{trace['seed']:016x}")
    started = time.monotonic()
    try:
        if tracer is None:
            value = fn(**kwargs)
        else:
            with activate(tracer):
                value = fn(**kwargs)
        outcome = {"status": "ok", "value": value}
    except Exception as exc:
        outcome = {
            "status": "err",
            "chain": error_chain(exc),
            "recoverable": isinstance(exc, RECOVERABLE),
            "type": type(exc).__name__,
        }
    outcome["elapsed"] = time.monotonic() - started
    if injector is not None:
        outcome["fired"] = {
            kind: count for kind, count in injector.fired.items() if count
        }
    if tracer is not None:
        tracer.end("exec.cell", "exec", status=outcome["status"])
        tracer.finalize()
        outcome["trace"] = tracer.records
        outcome["metrics"] = tracer.metrics.snapshot()
    return outcome


class SerialBackend:
    """Run every cell in the driver process, in declaration order."""

    #: Parallel backends persist through per-cell shards; serial ones
    #: write the monolithic checkpoint directly.
    concurrent = False
    jobs = 1

    def run_wave(self, jobs):
        """Yield ``(key, outcome)`` for each ``(key, fn, kwargs,
        faults_kw[, trace])`` job, in order."""
        for key, fn, kwargs, faults_kw, *rest in jobs:
            trace = rest[0] if rest else None
            yield key, invoke_cell(fn, kwargs, faults_kw, trace)

    def close(self):
        pass


class ProcessPoolBackend:
    """Fan cells out over ``jobs`` spawn-safe worker processes.

    ``spawn`` (not ``fork``) so workers start from a clean interpreter —
    no inherited locks, no shared numpy state — and behave identically
    on every platform.  At most ``2 * jobs`` cells are in flight at
    once, so a thousand-cell wave never materialises a thousand pickled
    payloads.  A worker that dies mid-cell (segfault, OOM-kill,
    ``os._exit``) breaks the pool: the pool is rebuilt and the affected
    cells retried up to ``crash_retries`` times, after which they yield
    a recoverable-error outcome.
    """

    concurrent = True

    def __init__(self, jobs, crash_retries=2):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.crash_retries = crash_retries
        self._executor = None

    def _pool(self):
        if self._executor is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._executor

    def _discard_pool(self):
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self):
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def run_wave(self, jobs):
        """Yield ``(key, outcome)`` as cells complete (arrival order).

        The caller must not depend on the order — the runner reorders
        statuses and results into declaration order afterwards.
        """
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        queue = list(jobs)
        crashes = {}
        in_flight = {}
        window = 2 * self.jobs

        def submit_next():
            while queue and len(in_flight) < window:
                job = queue.pop(0)
                key, fn, kwargs, faults_kw, *rest = job
                trace = rest[0] if rest else None
                future = self._pool().submit(
                    invoke_cell, fn, kwargs, faults_kw, trace
                )
                in_flight[future] = job

        submit_next()
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                job = in_flight.pop(future)
                key = job[0]
                try:
                    yield key, future.result()
                except BrokenProcessPool:
                    broken = True
                    crashes[key] = crashes.get(key, 0) + 1
                    if crashes[key] > self.crash_retries:
                        chain = error_chain(WorkerCrashError(
                            f"worker process died running cell {key!r} "
                            f"({crashes[key]} attempts)"
                        ))
                        yield key, {
                            "status": "err", "chain": chain,
                            "recoverable": True, "elapsed": 0.0,
                            "type": WorkerCrashError.__name__,
                        }
                    else:
                        queue.insert(0, job)
            if broken:
                # Every other in-flight future is poisoned too; retry
                # those cells on a fresh pool without charging them a
                # crash (their worker may have been healthy).
                for future, job in in_flight.items():
                    queue.insert(0, job)
                in_flight.clear()
                self._discard_pool()
            submit_next()
