"""Execution backends: where a plan's cells actually run.

``SerialBackend`` runs cells in declaration order in the driver process
— the zero-dependency fallback, and the reference a parallel run must
match byte-for-byte.  ``ProcessPoolBackend`` fans a wave's cells out
over the warm spawn-based pool in :mod:`repro.exec.pool`, batching
cells per IPC round-trip with a bounded number of in-flight batches;
a crashed worker surfaces as a typed transient
:class:`~repro.errors.WorkerCrashError` (absorbed into a partial report
by the same machinery that absorbs injected faults), never as a hung
pool.

Both backends speak the same outcome protocol, produced by
:func:`invoke_cell`::

    {"status": "ok",  "value": ..., "elapsed": s, "fired": {...}}
    {"status": "err", "chain": "...", "recoverable": bool, ...}

so the runner upstream cannot tell them apart — which is the point.
"""

import contextlib
import time

from repro.core.resilience import RECOVERABLE
from repro.core.resilience.checkpoint import error_chain
from repro.errors import WorkerCrashError
from repro.obs.prof import Profiler, activate_profile
from repro.obs.tracer import Tracer, activate


def invoke_cell(fn, kwargs, faults_kw=None, trace=None):
    """Run one cell body and normalise the outcome (worker entry point).

    Runs in the worker process under ``ProcessPoolBackend`` — the
    reason errors come back as data: a reconstructed exception would
    have to survive pickling, a chain string always does.  The derived
    fault injector's fired counts ride along so the driver can fold
    them into the root injector's telemetry.

    *trace* (``{"config": TraceConfig | None, "key": ..., "seed": ...,
    "profile": ProfileConfig | None}``) activates a per-cell
    :class:`~repro.obs.Tracer` and/or :class:`~repro.obs.prof.Profiler`
    around the body; recorded spans, the metrics snapshot and the
    profile travel back in the outcome — all virtual-timed (the
    profile's wall section aside), so the driver merges identical
    payloads whether the cell ran here, in a pool worker, or on a dist
    worker.
    """
    injector = kwargs.get(faults_kw) if faults_kw else None
    tracer = None
    profiler = None
    if trace is not None:
        if trace.get("config") is not None:
            tracer = Tracer(trace["config"])
            tracer.begin("exec.cell", "exec", key=trace["key"],
                         seed=f"{trace['seed']:016x}")
        if trace.get("profile") is not None:
            profiler = Profiler(trace["profile"])
    started = time.monotonic()
    try:
        with contextlib.ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(activate(tracer))
            if profiler is not None:
                stack.enter_context(activate_profile(profiler))
            value = fn(**kwargs)
        outcome = {"status": "ok", "value": value}
    except Exception as exc:
        outcome = {
            "status": "err",
            "chain": error_chain(exc),
            "recoverable": isinstance(exc, RECOVERABLE),
            "type": type(exc).__name__,
        }
    outcome["elapsed"] = time.monotonic() - started
    if injector is not None:
        outcome["fired"] = {
            kind: count for kind, count in injector.fired.items() if count
        }
    if tracer is not None:
        tracer.end("exec.cell", "exec", status=outcome["status"])
        tracer.finalize()
        outcome["trace"] = tracer.records
        outcome["metrics"] = tracer.metrics.snapshot()
    if profiler is not None:
        outcome["profile"] = profiler.snapshot()
    return outcome


class SerialBackend:
    """Run every cell in the driver process, in declaration order."""

    #: Parallel backends persist through per-cell shards; serial ones
    #: write the monolithic checkpoint directly.
    concurrent = False
    jobs = 1

    def run_wave(self, jobs):
        """Yield ``(key, outcome)`` for each ``(key, fn, kwargs,
        faults_kw[, trace])`` job, in order."""
        for key, fn, kwargs, faults_kw, *rest in jobs:
            trace = rest[0] if rest else None
            yield key, invoke_cell(fn, kwargs, faults_kw, trace)

    def close(self):
        pass


class ProcessPoolBackend:
    """Fan cells out over ``jobs`` warm, spawn-safe worker processes.

    Workers come from the module-shared pool in :mod:`repro.exec.pool`:
    they import ``repro`` once and are reused across waves, plans and
    experiments — ``close()`` is deliberately a no-op, so back-to-back
    ``execute_plan`` calls never pay spawn cost twice.  A wave's cells
    are partitioned into contiguous batches in declaration order (one
    pickle and one IPC round-trip per batch, not per cell); at most
    ``2 * jobs`` batches are in flight at once, so a thousand-cell wave
    never materialises a thousand pickled payloads.

    A worker that dies mid-batch (segfault, OOM-kill, ``os._exit``)
    breaks the pool: the pool is rebuilt and the batch's cells retried
    as singletons to isolate the crasher — healthy batchmates re-run
    uncharged, the crashing cell is charged up to ``crash_retries``
    attempts before yielding a recoverable-error outcome.
    """

    concurrent = True

    def __init__(self, jobs, crash_retries=2, batch_size=None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.jobs = jobs
        self.crash_retries = crash_retries
        self.batch_size = batch_size

    def _pool(self):
        from repro.exec.pool import shared_pool

        return shared_pool(self.jobs)

    def _discard_pool(self):
        from repro.exec.pool import discard_pool

        discard_pool(self.jobs)

    def close(self):
        """No-op: the shared pool stays warm for the next plan.

        ``repro.exec.pool.shutdown_pools`` reaps it at interpreter
        exit (or explicitly, in tests)."""

    def _partition(self, jobs):
        """Split a wave into contiguous declaration-order batches.

        Auto sizing targets ``2 * jobs`` batches per wave: enough
        slack for load balancing when cell durations vary, while a
        14-cell ``--jobs 2`` wave still needs only 4 round-trips
        instead of 14.
        """
        size = self.batch_size
        if size is None:
            size = max(1, -(-len(jobs) // (2 * self.jobs)))
        return [jobs[i:i + size] for i in range(0, len(jobs), size)]

    def run_wave(self, jobs):
        """Yield ``(key, outcome)`` as batches complete (arrival order).

        The caller must not depend on the order — the runner reorders
        statuses and results into declaration order afterwards.
        """
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        from repro.exec.pool import invoke_batch

        jobs = list(jobs)
        if not jobs:
            return
        queue = self._partition(jobs)
        crashes = {}
        in_flight = {}
        window = 2 * self.jobs

        def submit_next():
            while queue and len(in_flight) < window:
                batch = queue.pop(0)
                future = self._pool().submit(invoke_batch, batch)
                in_flight[future] = batch

        submit_next()
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                batch = in_flight.pop(future)
                try:
                    for key, outcome in future.result():
                        yield key, outcome
                except BrokenProcessPool:
                    broken = True
                    if len(batch) > 1:
                        # Any cell in the batch may be the crasher;
                        # retry them one per batch, uncharged, so the
                        # next break names exactly one suspect.
                        for job in reversed(batch):
                            queue.insert(0, [job])
                        continue
                    key = batch[0][0]
                    crashes[key] = crashes.get(key, 0) + 1
                    if crashes[key] > self.crash_retries:
                        chain = error_chain(WorkerCrashError(
                            f"worker process died running cell {key!r} "
                            f"({crashes[key]} attempts)"
                        ))
                        yield key, {
                            "status": "err", "chain": chain,
                            "recoverable": True, "elapsed": 0.0,
                            "type": WorkerCrashError.__name__,
                        }
                    else:
                        queue.insert(0, batch)
            if broken:
                # Every other in-flight batch is poisoned too; retry
                # those cells on a fresh pool without charging them a
                # crash (their worker may have been healthy).
                for future, batch in in_flight.items():
                    queue.insert(0, batch)
                in_flight.clear()
                self._discard_pool()
            submit_next()
