"""HPC timeline visualisation: what the defender's dashboard shows.

Renders per-window event series as ASCII strip charts, so the attack's
phases — host prologue, ROP entry, execve, flush/reload bursts,
dispersion valleys — are visible at a glance.  Used by the timeline
example and handy when debugging new perturbation variants.
"""

from repro.core.reporting import sparkline

#: Events worth watching in a timeline by default.
DEFAULT_TIMELINE_EVENTS = (
    "total_cache_misses",
    "total_cache_accesses",
    "branch_mispredictions",
    "branch_instructions",
)


def series_from_samples(samples, event):
    """Extract one event's per-window series from profiler samples."""
    return [float(sample.events[event]) for sample in samples]


def render_timeline(samples, events=DEFAULT_TIMELINE_EVENTS, width=72,
                    title=None):
    """Render event strips over the sample windows.

    Long capture runs are bucketed down to *width* columns by averaging,
    so the chart stays terminal-sized regardless of sample count.
    """
    lines = []
    if title:
        lines.append(title)
    if not samples:
        lines.append("  (no samples)")
        return "\n".join(lines)
    lines.append(f"  {len(samples)} windows, bucketed to "
                 f"{min(width, len(samples))} columns")
    for event in events:
        series = series_from_samples(samples, event)
        bucketed = _bucket(series, width)
        low, high = min(bucketed), max(bucketed)
        lines.append(
            f"  {event:>24} [{low:8.1f}..{high:8.1f}] "
            f"{sparkline(bucketed)}"
        )
    return "\n".join(lines)


def detect_phases(samples, event="total_cache_misses", threshold=None):
    """Split a capture into burst/quiet phases by thresholding *event*.

    Returns a list of ``(phase, start_index, length)`` with phase in
    {"burst", "quiet"}.  The default threshold is the midpoint of the
    series' range; a flat series (range < 1 event) is all-quiet.
    """
    series = series_from_samples(samples, event)
    if not series:
        return []
    if threshold is None:
        low, high = min(series), max(series)
        if high - low < 1.0:
            return [("quiet", 0, len(series))]
        threshold = (low + high) / 2.0
    phases = []
    current = "burst" if series[0] >= threshold else "quiet"
    start = 0
    for index, value in enumerate(series[1:], start=1):
        phase = "burst" if value >= threshold else "quiet"
        if phase != current:
            phases.append((current, start, index - start))
            current, start = phase, index
    phases.append((current, start, len(series) - start))
    return phases


def burst_fraction(samples, event="total_cache_misses", threshold=None):
    """Fraction of windows in burst phases — the dispersion metric.

    Plain Spectre sits near 1.0; a well-dispersed CR-Spectre variant
    pushes this toward 0, which is exactly why fixed-window detectors
    stop seeing it.
    """
    phases = detect_phases(samples, event=event, threshold=threshold)
    total = sum(length for _, _, length in phases)
    if total == 0:
        return 0.0
    burst = sum(length for phase, _, length in phases if phase == "burst")
    return burst / total


def _bucket(series, width):
    """Average-downsample a series to at most *width* points."""
    if len(series) <= width:
        return list(series)
    bucketed = []
    step = len(series) / width
    for column in range(width):
        lo = int(column * step)
        hi = max(lo + 1, int((column + 1) * step))
        chunk = series[lo:hi]
        bucketed.append(sum(chunk) / len(chunk))
    return bucketed
