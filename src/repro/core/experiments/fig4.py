"""Figure 4: HID accuracy vs feature size, per MiBench host.

The paper plots detection accuracy of an MLP-style HID distinguishing
each of four MiBench hosts from (variant-averaged) standalone Spectre,
for feature sizes 16, 8, 4, 2 and 1.  Expected shape: >80 % for sizes
>= 2, a collapse at size 1, and >90 % at the chosen size 4.
"""

import dataclasses

from repro.core.reporting import format_table
from repro.core.scenario import Scenario, ScenarioConfig
from repro.hid import feature_set, make_detector, samples_to_dataset
from repro.hid.features import FEATURE_SIZES
from repro.workloads import FIG4_HOSTS


@dataclasses.dataclass
class Fig4Result:
    """accuracies[host][feature_size] = variant-averaged accuracy."""

    accuracies: dict
    hosts: tuple
    feature_sizes: tuple
    classifier: str

    def format(self):
        headers = ["Feature size"] + [
            f"Spectre_{i + 1} ({host})"
            for i, host in enumerate(self.hosts)
        ]
        rows = []
        for size in self.feature_sizes:
            row = [size]
            for host in self.hosts:
                row.append(f"{100.0 * self.accuracies[host][size]:.1f}%")
            rows.append(row)
        return format_table(
            headers, rows,
            title=(f"Fig. 4 — HID ({self.classifier}) accuracy vs feature "
                   f"size (Spectre variants averaged)"),
        )

    def accuracy_at(self, size):
        """Host-averaged accuracy at one feature size."""
        values = [self.accuracies[host][size] for host in self.hosts]
        return sum(values) / len(values)


def run_fig4(seed=0, hosts=FIG4_HOSTS, feature_sizes=FEATURE_SIZES,
             classifier="mlp", benign_per_host=150, attack_per_variant=50,
             variants=("v1", "rsb", "sbo")):
    """Regenerate Figure 4.  Returns a :class:`Fig4Result`."""
    accuracies = {}
    for host in hosts:
        scenario = Scenario(ScenarioConfig(
            host=host, seed=seed, spectre_variants=tuple(variants),
        ))
        # The paper's profiling scope "also includes the host and other
        # benign applications like browsers, text editors" — without the
        # cache-noisy extras a single miss counter would suffice.
        benign = scenario.benign_samples(benign_per_host)
        per_variant_samples = {
            variant: scenario.attack_samples(
                attack_per_variant, variant=variant
            )
            for variant in variants
        }
        accuracies[host] = {}
        for size in feature_sizes:
            features = feature_set(size)
            variant_accuracies = []
            for variant, attack in per_variant_samples.items():
                dataset = samples_to_dataset(benign, attack, features)
                train, test = dataset.split(0.7, seed=seed)
                detector = make_detector(
                    classifier, features=features, seed=seed
                )
                detector.fit(train)
                variant_accuracies.append(detector.accuracy_on(test))
            accuracies[host][size] = (
                sum(variant_accuracies) / len(variant_accuracies)
            )
    return Fig4Result(
        accuracies=accuracies,
        hosts=tuple(hosts),
        feature_sizes=tuple(feature_sizes),
        classifier=classifier,
    )
