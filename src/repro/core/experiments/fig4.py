"""Figure 4: HID accuracy vs feature size, per MiBench host.

The paper plots detection accuracy of an MLP-style HID distinguishing
each of four MiBench hosts from (variant-averaged) standalone Spectre,
for feature sizes 16, 8, 4, 2 and 1.  Expected shape: >80 % for sizes
>= 2, a collapse at size 1, and >90 % at the chosen size 4.

Each host is one sweep *cell* of the declared :class:`SweepPlan`
(``repro.exec``): cells are mutually independent, seeded from their
cell key, and may run serially or fanned out over a process pool with
identical results; with ``checkpoint`` set, completed hosts persist
atomically and a re-run resumes with the remaining hosts; with
``faults`` set, injected failures degrade single cells into a partial
report instead of crashing the sweep.
"""

import dataclasses

from repro.core.experiments.common import open_checkpoint
from repro.core.reporting import (
    append_metrics_section,
    append_status_section,
    format_table,
)
from repro.core.resilience import sweep_partial
from repro.core.scenario import Scenario, ScenarioConfig
from repro.exec import SweepPlan, backend_for, execute_plan
from repro.hid import feature_set, make_detector, samples_to_dataset
from repro.hid.features import FEATURE_SIZES
from repro.workloads import FIG4_HOSTS


@dataclasses.dataclass
class Fig4Result:
    """accuracies[host][feature_size] = variant-averaged accuracy."""

    accuracies: dict
    hosts: tuple
    feature_sizes: tuple
    classifier: str
    cell_status: dict = dataclasses.field(default_factory=dict)
    cell_metrics: dict = dataclasses.field(default_factory=dict)

    @property
    def partial(self):
        return sweep_partial(self.cell_status)

    def format(self):
        headers = ["Feature size"] + [
            f"Spectre_{i + 1} ({host})"
            for i, host in enumerate(self.hosts)
        ]
        rows = []
        for size in self.feature_sizes:
            row = [size]
            for host in self.hosts:
                cell = self.accuracies.get(host)
                row.append(
                    f"{100.0 * cell[size]:.1f}%" if cell else "n/a"
                )
            rows.append(row)
        text = format_table(
            headers, rows,
            title=(f"Fig. 4 — HID ({self.classifier}) accuracy vs feature "
                   f"size (Spectre variants averaged)"),
        )
        text = append_status_section(
            text, self._noteworthy_status(), self.partial
        )
        return append_metrics_section(text, self.cell_metrics)

    def _noteworthy_status(self):
        # "cached" is unremarkable: a resumed sweep must render the same
        # report an uninterrupted one did.
        if any(cell.get("status") not in ("ok", "cached")
               for cell in self.cell_status.values()):
            return self.cell_status
        return {}

    def accuracy_at(self, size):
        """Host-averaged accuracy at one feature size (completed hosts)."""
        values = [
            self.accuracies[host][size]
            for host in self.hosts if host in self.accuracies
        ]
        return sum(values) / len(values)

    def headlines(self):
        """The run-ledger headline numbers (see docs/LEDGER.md).

        The paper's chosen operating point is feature size 4 (">90 %");
        size 1 records the collapse the figure exists to show.
        """
        if not self.accuracies:
            return {}
        out = {}
        for size in (4, 1):
            if size in self.feature_sizes:
                out[f"hid_accuracy_size{size}"] = self.accuracy_at(size)
        return out

    def series(self):
        """Accuracy-vs-feature-size series, one per completed host."""
        return {
            f"accuracy_by_size/{host}": [
                self.accuracies[host][size]
                for size in self.feature_sizes
            ]
            for host in self.hosts if host in self.accuracies
        }


def _host_cell(host, feature_sizes, classifier, benign_per_host,
               attack_per_variant, variants, cell_seed=0, faults=None,
               uarch="inorder"):
    """One host's accuracy-by-size dict (JSON-serialisable)."""
    scenario = Scenario(ScenarioConfig(
        host=host, seed=cell_seed, spectre_variants=tuple(variants),
        uarch=uarch,
    ), faults=faults)
    # The paper's profiling scope "also includes the host and other
    # benign applications like browsers, text editors" — without the
    # cache-noisy extras a single miss counter would suffice.
    benign = scenario.benign_samples(benign_per_host)
    per_variant_samples = {
        variant: scenario.attack_samples(
            attack_per_variant, variant=variant
        )
        for variant in variants
    }
    by_size = {}
    for size in feature_sizes:
        features = feature_set(size)
        variant_accuracies = []
        for variant, attack in per_variant_samples.items():
            dataset = samples_to_dataset(benign, attack, features)
            train, test = dataset.split(0.7, seed=cell_seed)
            if faults is not None:
                faults.check_convergence(
                    classifier, context=f"fig4:{host}:{size}"
                )
            detector = make_detector(
                classifier, features=features, seed=cell_seed
            )
            detector.fit(train)
            variant_accuracies.append(detector.accuracy_on(test))
        by_size[str(size)] = (
            sum(variant_accuracies) / len(variant_accuracies)
        )
    return by_size


def plan_fig4(seed=0, hosts=FIG4_HOSTS, feature_sizes=FEATURE_SIZES,
              classifier="mlp", benign_per_host=150, attack_per_variant=50,
              variants=("v1", "rsb", "sbo"), faults=None,
              uarch="inorder"):
    """Declare the Figure-4 cell grid: one independent cell per host."""
    plan = SweepPlan("fig4", seed, faults=faults)
    for host in hosts:
        plan.add(
            f"host/{host}", _host_cell,
            kwargs=dict(
                host=host, feature_sizes=list(feature_sizes),
                classifier=classifier, benign_per_host=benign_per_host,
                attack_per_variant=attack_per_variant,
                variants=list(variants), uarch=uarch,
            ),
            seed_kw="cell_seed", faults_kw="faults",
        )
    return plan


def fig4_meta(seed, hosts, feature_sizes, classifier, benign_per_host,
              attack_per_variant, variants, uarch="inorder"):
    return {
        "seed": seed,
        "hosts": list(hosts),
        "feature_sizes": list(feature_sizes),
        "classifier": classifier,
        "benign_per_host": benign_per_host,
        "attack_per_variant": attack_per_variant,
        "variants": list(variants),
        "uarch": uarch,
    }


def run_fig4(seed=0, hosts=FIG4_HOSTS, feature_sizes=FEATURE_SIZES,
             classifier="mlp", benign_per_host=150, attack_per_variant=50,
             variants=("v1", "rsb", "sbo"), checkpoint=None, faults=None,
             jobs=1, backend=None, progress=None, trace=None,
             traces=None, timings=None, cell_cache=None, profile=None,
             profiles=None, phases=None, uarch="inorder"):
    """Regenerate Figure 4.  Returns a :class:`Fig4Result`."""
    store = open_checkpoint(checkpoint, "fig4", fig4_meta(
        seed, hosts, feature_sizes, classifier, benign_per_host,
        attack_per_variant, variants, uarch,
    ), trace=trace, profile=profile)
    plan = plan_fig4(seed, hosts, feature_sizes, classifier,
                     benign_per_host, attack_per_variant, variants,
                     faults=faults, uarch=uarch)
    statuses = {}
    metrics = {}
    results = execute_plan(plan, store=store, statuses=statuses,
                           backend=backend or backend_for(jobs),
                           progress=progress,
                           trace=trace, traces=traces, metrics=metrics,
                           timings=timings, cell_cache=cell_cache,
                           profile=profile, profiles=profiles,
                           phases=phases)
    accuracies = {}
    for host in hosts:
        value = results.get(f"host/{host}")
        if value is not None:
            accuracies[host] = {int(k): v for k, v in value.items()}
    return Fig4Result(
        accuracies=accuracies,
        hosts=tuple(hosts),
        feature_sizes=tuple(feature_sizes),
        classifier=classifier,
        cell_status=statuses,
        cell_metrics=metrics,
    )
