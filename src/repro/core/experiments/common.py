"""Shared machinery for the per-figure experiment runners."""

import os

from repro.attack import PerturbParams
from repro.core.resilience import CheckpointStore
from repro.hid import DEFAULT_FEATURES, make_detector, samples_to_dataset
from repro.hid.dataset import Dataset
from repro.obs.tracer import current_tracer


def open_checkpoint(checkpoint, experiment, meta, trace=None,
                    profile=None):
    """Resolve a runner's ``checkpoint`` argument into a store (or None).

    ``checkpoint`` is a directory: the sweep persists to
    ``<checkpoint>/<experiment>.json``.  ``meta`` must hold every knob
    that changes the sweep's cells (seed, scale, hosts...) — a stored
    checkpoint with different meta is discarded, never mixed in.  A
    :class:`~repro.obs.TraceConfig` is part of that identity: traced
    shards carry trace+metrics payloads an untraced run would not
    replay, so the two never share a checkpoint.  So is an armed
    :class:`~repro.obs.prof.ProfileConfig` — a profiled run takes the
    instrumented interpreter loop and must not resume (or seed) an
    unprofiled checkpoint, whose replayed cells would carry no profile.
    """
    if checkpoint is None:
        return None
    path = os.path.join(os.fspath(checkpoint), f"{experiment}.json")
    meta = {"experiment": experiment, **meta}
    if trace is not None:
        meta["trace"] = {
            "categories": (None if trace.categories is None
                           else sorted(trace.categories)),
            "max_records": trace.max_records,
        }
    if profile is not None and profile.active:
        meta["profile"] = {
            "subsystems": (None if profile.subsystems is None
                           else sorted(profile.subsystems)),
            "top_blocks": profile.top_blocks,
        }
    return CheckpointStore(path, meta=meta)


def sample_training_records(host, training_benign, training_attack,
                            cell_seed=0, faults=None, scenario=None,
                            uarch="inorder"):
    """The ``training`` cell body shared by the fig5/fig6 plans.

    Samples a labelled corpus and returns it as JSON-serialisable
    records.  With no *scenario* injected, the campaign is staged from
    the cell's derived seed, so the corpus does not depend on what other
    cells ran before (or concurrently with) this one.
    """
    from repro.core.scenario import Scenario, ScenarioConfig
    from repro.hid.io import samples_to_records

    if scenario is None:
        scenario = Scenario(
            ScenarioConfig(host=host, seed=cell_seed, uarch=uarch),
            faults=faults,
        )
    return {
        "benign": samples_to_records(
            scenario.benign_samples(training_benign)
        ),
        "attack": samples_to_records(
            scenario.attack_samples_mixed_variants(training_attack)
        ),
    }

#: The paper's four detector models (Section III-A).
DETECTOR_NAMES = ("mlp", "nn", "lr", "svm")

#: Figure legend names used in the paper for the four detectors.
DETECTOR_LEGENDS = {
    "mlp": "Spectre [2] (MLP)",
    "nn": "Spectre [4] (NN)",
    "lr": "Spectre [3]-LR",
    "svm": "Spectre [3]-SVM",
}


def train_detectors(train_dataset, names=DETECTOR_NAMES, seed=0,
                    online=False, features=DEFAULT_FEATURES, faults=None):
    """Fit one detector per model name on the training dataset.

    *faults* (a :class:`~repro.core.resilience.FaultInjector`) may inject
    ``classifier_divergence``: the affected fit raises a transient
    :class:`~repro.errors.ClassifierConvergenceError`, which sweep cells
    absorb into a partial report.
    """
    tracer = current_tracer()
    detectors = {}
    for name in names:
        if faults is not None:
            faults.check_convergence(name, context="train_detectors")
        detector = make_detector(
            name, features=features, seed=seed, online=online
        )
        with tracer.span("hid.train", "hid", model=name, online=online,
                         rows=len(train_dataset.y)):
            detector.fit(train_dataset)
        detectors[name] = detector
    return detectors


def attempt_dataset(benign_samples, attack_samples,
                    features=DEFAULT_FEATURES):
    """The evaluation set for one attack attempt (paper Figs. 5/6)."""
    return samples_to_dataset(benign_samples, attack_samples, features)


def mean_accuracy(detectors, dataset):
    accuracies = [d.accuracy_on(dataset) for d in detectors.values()]
    return sum(accuracies) / len(accuracies)


#: Deterministic pre-tuning ladder the attacker walks before going
#: random: progressively stronger dispersion (Section II-E's "delay loop
#: to disperse" applied with increasing force).
SEARCH_LADDER = (
    PerturbParams(),
    PerturbParams(loop_count=20, extra_loops=3),
    PerturbParams(delay=150, calls_per_byte=2),
    PerturbParams(delay=1000, calls_per_byte=2),
    PerturbParams(delay=2500, calls_per_byte=3),
    PerturbParams(delay=6000, calls_per_byte=4),
)


def search_evading_params(scenario, detectors, benign_pool,
                          attempt_samples=45, target=0.55, variant="v1",
                          extra_random=4, rng=None):
    """Offline pre-tuning of the single perturbation variant (Fig. 5b).

    The attacker probes the deployed (static) HID with candidate
    perturbations until the detectors' mean accuracy drops to the
    evasion threshold.  Returns ``(params, history)`` where history is
    ``[(params, accuracy), ...]``.
    """
    from repro.attack.perturb import random_params

    candidates = list(SEARCH_LADDER)
    if rng is not None:
        candidates.extend(random_params(rng) for _ in range(extra_random))

    history = []
    best = None
    for params in candidates:
        samples = scenario.attack_samples(
            attempt_samples, variant=variant, perturb=params
        )
        dataset = attempt_dataset(benign_pool[:len(samples) // 3], samples)
        accuracy = mean_accuracy(detectors, dataset)
        history.append((params, accuracy))
        if best is None or accuracy < best[1]:
            best = (params, accuracy)
        if accuracy <= target:
            return params, history
    return best[0], history


def co_run(processes, quantum=10_000, context_switch_flush=True,
           until=None, max_quanta=1_000_000, watchdog=None):
    """Round-robin *processes* with context-switch costs.

    Stops when ``until()`` becomes true (default: the first process
    terminates).  Used by the Table-I overhead measurements.  A
    *watchdog* turns an over-budget co-schedule into a typed
    :class:`~repro.errors.BudgetExceededError` instead of silently
    stopping at ``max_quanta``.
    """
    if until is None:
        primary = processes[0]
        until = lambda: not primary.alive  # noqa: E731

    last = None
    quanta = 0
    while not until() and quanta < max_quanta:
        progressed = False
        for process in processes:
            if not process.alive:
                continue
            if last is not None and last is not process:
                if context_switch_flush:
                    caches = process.cpu.caches
                    caches.l1d.flush_all()
                    caches.l1i.flush_all()
                    process.cpu.dtlb.flush()
                    process.cpu.itlb.flush()
                if process.cpu._tr_kernel is not None:
                    process.cpu._tr_kernel.event(
                        "kernel.context_switch", pid=process.pid
                    )
            last = process
            executed = process.step_quantum(quantum)
            if executed:
                progressed = True
            if watchdog is not None:
                watchdog.charge(executed)
            quanta += 1
            if until():
                break
        if not progressed:
            break
    return quanta


def split_training(benign_samples, attack_samples,
                   features=DEFAULT_FEATURES, train_fraction=0.7, seed=0):
    """Build the 70/30 split the paper uses; returns (train, test)."""
    dataset = samples_to_dataset(benign_samples, attack_samples, features)
    return dataset.split(train_fraction, seed=seed)


def benign_eval_pool(dataset):
    """Benign-only rows of a dataset, as a Dataset (for attempt mixes)."""
    mask = dataset.y == 0
    return Dataset(dataset.X[mask], dataset.y[mask], dataset.feature_names)
