"""Defender-side ablation: adversarial training against Algorithm 2.

The paper leaves the defender reactive.  This experiment asks the
natural follow-up: if the defender *anticipates* perturbation and
augments the training set with K randomly-drawn CR-Spectre variants,
how much evasion headroom is left for unseen variants?

Output: detection accuracy on held-out (never-trained-on) perturbation
variants as a function of the number of variants trained on.  The
interesting shape is diminishing returns — each disguise style must be
represented, and variants inside a known style stop evading, while a
style absent from training remains open.

Cell grid (the declared :class:`~repro.exec.SweepPlan`)::

    corpus ──┬── k/<K>   (one ablation point per K, fan-out)

``corpus`` samples every pool once (benign, plain attack, the K train
variants, holdout variants); each ``k/<K>`` cell trains its hardened
detector from the shared corpus, so the points are order-independent
and parallelise.  A killed sweep resumes with the corpus replayed from
the checkpoint and only the missing K points recomputed.
"""

import dataclasses
import random

from repro.attack.perturb import random_params
from repro.core.experiments.common import attempt_dataset, open_checkpoint
from repro.core.reporting import (
    append_metrics_section,
    append_status_section,
    format_table,
)
from repro.core.resilience import sweep_partial
from repro.core.scenario import Scenario, ScenarioConfig
from repro.exec import SweepPlan, backend_for, execute_plan
from repro.hid import make_detector, samples_to_dataset
from repro.hid.features import DEFAULT_FEATURES
from repro.hid.io import samples_from_records, samples_to_records


@dataclasses.dataclass
class HardeningResult:
    """accuracy_by_k[k] = mean accuracy on held-out variants."""

    accuracy_by_k: dict
    holdout_variants: int
    classifier: str
    cell_status: dict = dataclasses.field(default_factory=dict)
    cell_metrics: dict = dataclasses.field(default_factory=dict)

    @property
    def partial(self):
        return sweep_partial(self.cell_status)

    def format(self):
        rows = [
            [k, f"{100 * accuracy:.1f}%"]
            for k, accuracy in sorted(self.accuracy_by_k.items())
        ]
        text = format_table(
            ["variants trained on", "accuracy on unseen variants"],
            rows,
            title=(f"Hardening ablation — adversarially trained "
                   f"{self.classifier} vs {self.holdout_variants} "
                   f"held-out CR-Spectre variants"),
        )
        noteworthy = any(
            cell.get("status") not in ("ok", "cached")
            for cell in self.cell_status.values()
        )
        text = append_status_section(
            text, self.cell_status if noteworthy else {}, self.partial
        )
        return append_metrics_section(text, self.cell_metrics)

    def improvement(self):
        ks = sorted(self.accuracy_by_k)
        return self.accuracy_by_k[ks[-1]] - self.accuracy_by_k[ks[0]]

    def headlines(self):
        """Ledger headlines: accuracy recovered by adversarial training."""
        if not self.accuracy_by_k:
            return {}
        ks = sorted(self.accuracy_by_k)
        return {
            "unhardened_accuracy": self.accuracy_by_k[ks[0]],
            "hardened_accuracy": self.accuracy_by_k[ks[-1]],
            "hardening_improvement": self.improvement(),
        }

    def series(self):
        if not self.accuracy_by_k:
            return {}
        return {
            "accuracy_by_k": [
                self.accuracy_by_k[k] for k in sorted(self.accuracy_by_k)
            ],
        }


def _corpus_cell(root_seed, max_k, holdout_variants, samples_per_variant,
                 training_benign, training_attack, attempt_benign,
                 cell_seed=0, faults=None, scenario=None,
                 uarch="inorder"):
    """Every sampled pool, as JSON records (shared by all ``k/<K>`` cells).

    The train/holdout perturbation draws come from two disjoint RNG
    streams keyed off the *root* seed, exactly as the serial sweep drew
    them, so the ablation's variants do not depend on cell scheduling.
    """
    rng_train = random.Random(root_seed + 1)
    rng_holdout = random.Random(root_seed + 999)
    if scenario is None:
        scenario = Scenario(ScenarioConfig(seed=cell_seed, uarch=uarch),
                            faults=faults)
    benign = scenario.benign_samples(training_benign)
    plain = scenario.attack_samples_mixed_variants(training_attack)
    train_variants = [
        scenario.attack_samples(
            samples_per_variant, variant="v1",
            perturb=random_params(rng_train),
        )
        for _ in range(max_k)
    ]
    holdouts = [
        scenario.attack_samples(
            samples_per_variant, variant="v1",
            perturb=random_params(rng_holdout),
        )
        for _ in range(holdout_variants)
    ]
    eval_benign = scenario.benign_samples(
        attempt_benign * holdout_variants, include_extras=False
    )
    return {
        "benign": samples_to_records(benign),
        "plain_attack": samples_to_records(plain),
        "train_variants": [samples_to_records(s)
                           for s in train_variants],
        "holdouts": [samples_to_records(s) for s in holdouts],
        "eval_benign": samples_to_records(eval_benign),
    }


def _k_cell(corpus, k, root_seed, classifier, attempt_benign,
            cell_seed=0, faults=None):
    """One ablation point: hardened on K variants, scored on holdouts."""
    benign = samples_from_records(corpus["benign"])
    attack_pool = list(samples_from_records(corpus["plain_attack"]))
    for records in corpus["train_variants"][:k]:
        attack_pool.extend(samples_from_records(records))
    dataset = samples_to_dataset(benign, attack_pool, DEFAULT_FEATURES)
    if faults is not None:
        faults.check_convergence(classifier, context=f"hardening:k={k}")
    detector = make_detector(classifier, seed=root_seed)
    detector.fit(dataset)

    holdout_benign = samples_from_records(corpus["eval_benign"])
    accuracies = []
    for index, records in enumerate(corpus["holdouts"]):
        holdout = samples_from_records(records)
        eval_benign = holdout_benign[
            index * attempt_benign:(index + 1) * attempt_benign
        ]
        accuracies.append(detector.accuracy_on(
            attempt_dataset(eval_benign, holdout)
        ))
    return sum(accuracies) / len(accuracies)


def plan_hardening(seed=0, classifier="mlp", train_variant_counts=(0, 2, 4, 8),
                   holdout_variants=4, samples_per_variant=40,
                   training_benign=200, training_attack=120,
                   attempt_benign=15, scenario=None, faults=None,
                   uarch="inorder"):
    """Declare the hardening-ablation cell grid (see module docstring)."""
    plan = SweepPlan("hardening", seed, faults=faults)
    local = scenario is not None
    shared = {"scenario": scenario} if local else {}
    plan.add(
        "corpus", _corpus_cell,
        kwargs=dict(
            root_seed=seed, max_k=max(train_variant_counts),
            holdout_variants=holdout_variants,
            samples_per_variant=samples_per_variant,
            training_benign=training_benign,
            training_attack=training_attack,
            attempt_benign=attempt_benign, uarch=uarch, **shared,
        ),
        seed_kw="cell_seed", faults_kw="faults", local=local,
    )
    for k in train_variant_counts:
        plan.add(
            f"k/{k}", _k_cell,
            kwargs=dict(k=k, root_seed=seed, classifier=classifier,
                        attempt_benign=attempt_benign),
            deps={"corpus": "corpus"},
            seed_kw="cell_seed", faults_kw="faults", local=local,
        )
    return plan


def hardening_meta(seed, classifier, train_variant_counts, holdout_variants,
                   samples_per_variant, training_benign, training_attack,
                   attempt_benign, uarch="inorder"):
    return {
        "seed": seed,
        "classifier": classifier,
        "train_variant_counts": list(train_variant_counts),
        "holdout_variants": holdout_variants,
        "samples_per_variant": samples_per_variant,
        "training_benign": training_benign,
        "training_attack": training_attack,
        "attempt_benign": attempt_benign,
        "uarch": uarch,
    }


def run_hardening(seed=0, classifier="mlp", train_variant_counts=(0, 2, 4, 8),
                  holdout_variants=4, samples_per_variant=40,
                  training_benign=200, training_attack=120,
                  attempt_benign=15, scenario=None, checkpoint=None,
                  faults=None, jobs=1, backend=None, progress=None,
                  trace=None, traces=None, timings=None, cell_cache=None,
                  profile=None, profiles=None, phases=None,
                  uarch="inorder"):
    """Run the adversarial-training ablation.

    For each K in *train_variant_counts*: train on benign + plain
    Spectre + K random perturbation variants, then evaluate on
    *holdout_variants* fresh random variants (disjoint RNG stream).
    """
    store = open_checkpoint(checkpoint, "hardening", hardening_meta(
        seed, classifier, train_variant_counts, holdout_variants,
        samples_per_variant, training_benign, training_attack,
        attempt_benign, uarch,
    ), trace=trace, profile=profile)
    plan = plan_hardening(seed, classifier, train_variant_counts,
                          holdout_variants, samples_per_variant,
                          training_benign, training_attack, attempt_benign,
                          scenario=scenario, faults=faults, uarch=uarch)
    statuses = {}
    metrics = {}
    results = execute_plan(plan, store=store, statuses=statuses,
                           backend=backend or backend_for(jobs),
                           progress=progress,
                           trace=trace, traces=traces, metrics=metrics,
                           timings=timings, cell_cache=cell_cache,
                           profile=profile, profiles=profiles,
                           phases=phases)
    accuracy_by_k = {}
    for k in train_variant_counts:
        value = results.get(f"k/{k}")
        if value is not None:
            accuracy_by_k[k] = value
    return HardeningResult(
        accuracy_by_k=accuracy_by_k,
        holdout_variants=holdout_variants,
        classifier=classifier,
        cell_status=statuses,
        cell_metrics=metrics,
    )
