"""Defender-side ablation: adversarial training against Algorithm 2.

The paper leaves the defender reactive.  This experiment asks the
natural follow-up: if the defender *anticipates* perturbation and
augments the training set with K randomly-drawn CR-Spectre variants,
how much evasion headroom is left for unseen variants?

Output: detection accuracy on held-out (never-trained-on) perturbation
variants as a function of the number of variants trained on.  The
interesting shape is diminishing returns — each disguise style must be
represented, and variants inside a known style stop evading, while a
style absent from training remains open.
"""

import dataclasses
import random

from repro.attack.perturb import random_params
from repro.core.experiments.common import attempt_dataset
from repro.core.reporting import format_table
from repro.core.scenario import Scenario, ScenarioConfig
from repro.hid import make_detector, samples_to_dataset
from repro.hid.features import DEFAULT_FEATURES


@dataclasses.dataclass
class HardeningResult:
    """accuracy_by_k[k] = mean accuracy on held-out variants."""

    accuracy_by_k: dict
    holdout_variants: int
    classifier: str

    def format(self):
        rows = [
            [k, f"{100 * accuracy:.1f}%"]
            for k, accuracy in sorted(self.accuracy_by_k.items())
        ]
        return format_table(
            ["variants trained on", "accuracy on unseen variants"],
            rows,
            title=(f"Hardening ablation — adversarially trained "
                   f"{self.classifier} vs {self.holdout_variants} "
                   f"held-out CR-Spectre variants"),
        )

    def improvement(self):
        ks = sorted(self.accuracy_by_k)
        return self.accuracy_by_k[ks[-1]] - self.accuracy_by_k[ks[0]]


def run_hardening(seed=0, classifier="mlp", train_variant_counts=(0, 2, 4, 8),
                  holdout_variants=4, samples_per_variant=40,
                  training_benign=200, training_attack=120,
                  attempt_benign=15, scenario=None):
    """Run the adversarial-training ablation.

    For each K in *train_variant_counts*: train on benign + plain
    Spectre + K random perturbation variants, then evaluate on
    *holdout_variants* fresh random variants (disjoint RNG stream).
    """
    rng_train = random.Random(seed + 1)
    rng_holdout = random.Random(seed + 999)
    scenario = scenario or Scenario(ScenarioConfig(seed=seed))

    benign = scenario.benign_samples(training_benign)
    plain_attack = scenario.attack_samples_mixed_variants(training_attack)

    max_k = max(train_variant_counts)
    train_variant_samples = [
        scenario.attack_samples(
            samples_per_variant, variant="v1",
            perturb=random_params(rng_train),
        )
        for _ in range(max_k)
    ]
    holdout_sets = [
        scenario.attack_samples(
            samples_per_variant, variant="v1",
            perturb=random_params(rng_holdout),
        )
        for _ in range(holdout_variants)
    ]
    holdout_benign = scenario.benign_samples(
        attempt_benign * holdout_variants, include_extras=False
    )

    accuracy_by_k = {}
    for k in train_variant_counts:
        attack_pool = list(plain_attack)
        for variant_samples in train_variant_samples[:k]:
            attack_pool.extend(variant_samples)
        dataset = samples_to_dataset(benign, attack_pool,
                                     DEFAULT_FEATURES)
        detector = make_detector(classifier, seed=seed)
        detector.fit(dataset)

        accuracies = []
        for index, holdout in enumerate(holdout_sets):
            eval_benign = holdout_benign[
                index * attempt_benign:(index + 1) * attempt_benign
            ]
            accuracies.append(detector.accuracy_on(
                attempt_dataset(eval_benign, holdout)
            ))
        accuracy_by_k[k] = sum(accuracies) / len(accuracies)

    return HardeningResult(
        accuracy_by_k=accuracy_by_k,
        holdout_variants=holdout_variants,
        classifier=classifier,
    )
