"""Figure 6: online (retraining) HID vs Spectre and CR-Spectre.

(a) Plain Spectre against detectors that retrain after every attempt:
    accuracy stays high and *levels out* (retraining smooths variance).
(b) CR-Spectre turns dynamic: after every detected attempt (accuracy
    above the 80 % detection line) the attacker mutates the Algorithm-2
    parameters; the online HID retrains on everything it saw.  The paper
    reports a degrading trend with partial recoveries, crossing the 55 %
    evasion threshold, with a minimum of 16 %.
"""

import dataclasses

from repro.attack.adaptive import AdaptiveAttacker
from repro.core.experiments.common import (
    DETECTOR_NAMES,
    attempt_dataset,
    split_training,
    train_detectors,
)
from repro.hid.dataset import Dataset


def observe_self_labeled(detector, dataset):
    """Online retraining with the labels the defender actually has.

    A runtime HID cannot know ground truth for new traces: windows it
    flagged are confirmed as attacks (analyst triage), windows it
    cleared enter the corpus as benign.  Evasive windows therefore
    *poison* the corpus — the self-training weakness the dynamic
    CR-Spectre exploits to keep the online HID degraded (paper Fig 6b).
    """
    predictions = detector.predict(dataset)
    detector.observe(
        Dataset(dataset.X, predictions, dataset.feature_names)
    )
from repro.core.reporting import format_series, sparkline
from repro.core.scenario import Scenario, ScenarioConfig


@dataclasses.dataclass
class Fig6Result:
    spectre: dict
    crspectre: dict
    attacker_history: list  # AttemptRecord per attempt
    attempts: int

    def format(self):
        lines = ["Fig. 6(a) — online HID vs plain Spectre "
                 "(accuracy per attempt)"]
        for name, series in self.spectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        lines.append("Fig. 6(b) — online HID vs dynamic CR-Spectre")
        for name, series in self.crspectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        lines.append("  attacker variants per attempt:")
        for record in self.attacker_history:
            lines.append(
                f"    #{record.attempt}: acc={100 * record.accuracy:.1f}% "
                f"{'EVADED' if record.evaded else 'detected'} "
                f"[{record.params.describe()}]"
            )
        return "\n".join(lines)

    def min_accuracy(self):
        return min(v for s in self.crspectre.values() for v in s)


def run_fig6(seed=0, host="basicmath", attempts=10,
             detector_names=DETECTOR_NAMES, training_benign=240,
             training_attack=240, attempt_samples=60, attempt_benign=15,
             audit_every=3, scenario=None, training=None):
    """Regenerate Figure 6.  Returns a :class:`Fig6Result`.

    ``audit_every``: every k-th attempt the defender's analysts audit
    the window labels (the paper's human-in-the-loop), so that attempt
    is learned with ground truth — the source of the partial recoveries
    in Fig. 6(b); all other attempts retrain self-labeled.
    """
    if scenario is None:
        scenario = Scenario(ScenarioConfig(host=host, seed=seed))
    if training is None:
        benign = scenario.benign_samples(training_benign)
        attack = scenario.attack_samples_mixed_variants(training_attack)
        training = (benign, attack)
    benign, attack = training

    # ---- (a) plain Spectre vs retraining detectors ---------------------
    train, _ = split_training(benign, attack, seed=seed)
    detectors = train_detectors(train, detector_names, seed=seed,
                                online=True)
    spectre_series = {name: [] for name in detector_names}
    for attempt in range(attempts):
        fresh_attack = scenario.attack_samples_mixed_variants(
            attempt_samples
        )
        fresh_benign = scenario.benign_samples(
            attempt_benign, include_extras=False
        )
        dataset = attempt_dataset(fresh_benign, fresh_attack)
        audited = audit_every and (attempt + 1) % audit_every == 0
        for name, detector in detectors.items():
            spectre_series[name].append(detector.accuracy_on(dataset))
            if audited:
                detector.observe(dataset)
            else:
                observe_self_labeled(detector, dataset)

    # ---- (b) dynamic CR-Spectre vs retraining detectors ------------------
    detectors = train_detectors(train, detector_names, seed=seed,
                                online=True)
    attacker = AdaptiveAttacker(seed=seed + 13)
    crspectre_series = {name: [] for name in detector_names}
    for attempt in range(attempts):
        params = attacker.propose()
        fresh_attack = scenario.attack_samples_mixed_variants(
            attempt_samples, perturb=params
        )
        fresh_benign = scenario.benign_samples(
            attempt_benign, include_extras=False
        )
        dataset = attempt_dataset(fresh_benign, fresh_attack)
        audited = audit_every and (attempt + 1) % audit_every == 0
        accuracies = []
        for name, detector in detectors.items():
            accuracy = detector.accuracy_on(dataset)
            crspectre_series[name].append(accuracy)
            accuracies.append(accuracy)
            if audited:
                detector.observe(dataset)
            else:
                observe_self_labeled(detector, dataset)
        # The attacker only sees the (averaged) detector verdicts.
        attacker.feedback(sum(accuracies) / len(accuracies))

    return Fig6Result(
        spectre=spectre_series,
        crspectre=crspectre_series,
        attacker_history=list(attacker.history),
        attempts=attempts,
    )
