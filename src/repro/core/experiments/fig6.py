"""Figure 6: online (retraining) HID vs Spectre and CR-Spectre.

(a) Plain Spectre against detectors that retrain after every attempt:
    accuracy stays high and *levels out* (retraining smooths variance).
(b) CR-Spectre turns dynamic: after every detected attempt (accuracy
    above the 80 % detection line) the attacker mutates the Algorithm-2
    parameters; the online HID retrains on everything it saw.  The paper
    reports a degrading trend with partial recoveries, crossing the 55 %
    evasion threshold, with a minimum of 16 %.

Sweep cells (checkpoint/resume granularity): ``training`` (the sampled
corpus), ``spectre`` (phase a, detectors retrained inside the cell) and
``crspectre`` (phase b, including the serialised attacker history).  A
killed sweep resumes from the last completed cell; an injected fault
degrades its cell into a partial report.
"""

import dataclasses

from repro.attack import PerturbParams
from repro.attack.adaptive import AdaptiveAttacker, AttemptRecord
from repro.core.experiments.common import (
    DETECTOR_NAMES,
    attempt_dataset,
    open_checkpoint,
    split_training,
    train_detectors,
)
from repro.core.reporting import (
    append_status_section,
    format_series,
    sparkline,
)
from repro.core.resilience import run_cell, sweep_partial
from repro.core.scenario import Scenario, ScenarioConfig
from repro.hid.dataset import Dataset
from repro.hid.io import samples_from_records, samples_to_records


def observe_self_labeled(detector, dataset):
    """Online retraining with the labels the defender actually has.

    A runtime HID cannot know ground truth for new traces: windows it
    flagged are confirmed as attacks (analyst triage), windows it
    cleared enter the corpus as benign.  Evasive windows therefore
    *poison* the corpus — the self-training weakness the dynamic
    CR-Spectre exploits to keep the online HID degraded (paper Fig 6b).
    """
    predictions = detector.predict(dataset)
    detector.observe(
        Dataset(dataset.X, predictions, dataset.feature_names)
    )


@dataclasses.dataclass
class Fig6Result:
    spectre: dict
    crspectre: dict
    attacker_history: list  # AttemptRecord per attempt
    attempts: int
    cell_status: dict = dataclasses.field(default_factory=dict)

    @property
    def partial(self):
        return sweep_partial(self.cell_status)

    def format(self):
        lines = ["Fig. 6(a) — online HID vs plain Spectre "
                 "(accuracy per attempt)"]
        for name, series in self.spectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        lines.append("Fig. 6(b) — online HID vs dynamic CR-Spectre")
        for name, series in self.crspectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        lines.append("  attacker variants per attempt:")
        for record in self.attacker_history:
            lines.append(
                f"    #{record.attempt}: acc={100 * record.accuracy:.1f}% "
                f"{'EVADED' if record.evaded else 'detected'} "
                f"[{record.params.describe()}]"
            )
        text = "\n".join(lines)
        noteworthy = any(
            cell.get("status") != "ok"
            for cell in self.cell_status.values()
        )
        return append_status_section(
            text, self.cell_status if noteworthy else {}, self.partial
        )

    def min_accuracy(self):
        return min(v for s in self.crspectre.values() for v in s)


def run_fig6(seed=0, host="basicmath", attempts=10,
             detector_names=DETECTOR_NAMES, training_benign=240,
             training_attack=240, attempt_samples=60, attempt_benign=15,
             audit_every=3, scenario=None, training=None, checkpoint=None,
             faults=None):
    """Regenerate Figure 6.  Returns a :class:`Fig6Result`.

    ``audit_every``: every k-th attempt the defender's analysts audit
    the window labels (the paper's human-in-the-loop), so that attempt
    is learned with ground truth — the source of the partial recoveries
    in Fig. 6(b); all other attempts retrain self-labeled.
    """
    store = open_checkpoint(checkpoint, "fig6", {
        "seed": seed, "host": host, "attempts": attempts,
        "detector_names": list(detector_names),
        "training_benign": training_benign,
        "training_attack": training_attack,
        "attempt_samples": attempt_samples,
        "attempt_benign": attempt_benign,
        "audit_every": audit_every,
    })
    statuses = {}
    if scenario is None:
        scenario = Scenario(ScenarioConfig(host=host, seed=seed),
                            faults=faults)
    if training is None:
        records = run_cell(
            "training",
            lambda: {
                "benign": samples_to_records(
                    scenario.benign_samples(training_benign)
                ),
                "attack": samples_to_records(
                    scenario.attack_samples_mixed_variants(training_attack)
                ),
            },
            store=store, statuses=statuses,
        )
        if records is None:
            return Fig6Result(
                spectre={}, crspectre={}, attacker_history=[],
                attempts=attempts, cell_status=statuses,
            )
        training = (samples_from_records(records["benign"]),
                    samples_from_records(records["attack"]))
    benign, attack = training
    train, _ = split_training(benign, attack, seed=seed)

    # ---- (a) plain Spectre vs retraining detectors ---------------------
    def phase_a():
        detectors = train_detectors(train, detector_names, seed=seed,
                                    online=True, faults=faults)
        series = {name: [] for name in detector_names}
        for attempt in range(attempts):
            fresh_attack = scenario.attack_samples_mixed_variants(
                attempt_samples
            )
            fresh_benign = scenario.benign_samples(
                attempt_benign, include_extras=False
            )
            dataset = attempt_dataset(fresh_benign, fresh_attack)
            audited = audit_every and (attempt + 1) % audit_every == 0
            for name, detector in detectors.items():
                series[name].append(detector.accuracy_on(dataset))
                if audited:
                    detector.observe(dataset)
                else:
                    observe_self_labeled(detector, dataset)
        return series

    spectre_series = run_cell("spectre", phase_a,
                              store=store, statuses=statuses) or {}

    # ---- (b) dynamic CR-Spectre vs retraining detectors ------------------
    def phase_b():
        detectors = train_detectors(train, detector_names, seed=seed,
                                    online=True, faults=faults)
        attacker = AdaptiveAttacker(seed=seed + 13)
        series = {name: [] for name in detector_names}
        for attempt in range(attempts):
            params = attacker.propose()
            fresh_attack = scenario.attack_samples_mixed_variants(
                attempt_samples, perturb=params
            )
            fresh_benign = scenario.benign_samples(
                attempt_benign, include_extras=False
            )
            dataset = attempt_dataset(fresh_benign, fresh_attack)
            audited = audit_every and (attempt + 1) % audit_every == 0
            accuracies = []
            for name, detector in detectors.items():
                accuracy = detector.accuracy_on(dataset)
                series[name].append(accuracy)
                accuracies.append(accuracy)
                if audited:
                    detector.observe(dataset)
                else:
                    observe_self_labeled(detector, dataset)
            # The attacker only sees the (averaged) detector verdicts.
            attacker.feedback(sum(accuracies) / len(accuracies))
        return {
            "series": series,
            "history": [
                {
                    "attempt": record.attempt,
                    "accuracy": record.accuracy,
                    "params": dataclasses.asdict(record.params),
                }
                for record in attacker.history
            ],
        }

    phase_b_value = run_cell("crspectre", phase_b,
                             store=store, statuses=statuses)
    if phase_b_value is None:
        crspectre_series, attacker_history = {}, []
    else:
        crspectre_series = phase_b_value["series"]
        attacker_history = [
            AttemptRecord(
                attempt=record["attempt"],
                params=PerturbParams(**record["params"]),
                accuracy=record["accuracy"],
            )
            for record in phase_b_value["history"]
        ]

    return Fig6Result(
        spectre=spectre_series,
        crspectre=crspectre_series,
        attacker_history=attacker_history,
        attempts=attempts,
        cell_status=statuses,
    )
