"""Figure 6: online (retraining) HID vs Spectre and CR-Spectre.

(a) Plain Spectre against detectors that retrain after every attempt:
    accuracy stays high and *levels out* (retraining smooths variance).
(b) CR-Spectre turns dynamic: after every detected attempt (accuracy
    above the 80 % detection line) the attacker mutates the Algorithm-2
    parameters; the online HID retrains on everything it saw.  The paper
    reports a degrading trend with partial recoveries, crossing the 55 %
    evasion threshold, with a minimum of 16 %.

Cell grid (the declared :class:`~repro.exec.SweepPlan`)::

    training ──┬── spectre      (phase a)
               └── crspectre    (phase b)

Unlike Fig. 5, the attempts *inside* a phase cannot be split into
cells: the online detectors carry state from attempt to attempt (that
coupling is the entire point of the figure), so each phase is one cell
and the two phases fan out after training.  A killed sweep resumes from
the last completed cell; an injected fault degrades its cell into a
partial report.
"""

import dataclasses

from repro.attack import PerturbParams
from repro.attack.adaptive import AdaptiveAttacker, AttemptRecord
from repro.core.experiments.common import (
    DETECTOR_NAMES,
    attempt_dataset,
    open_checkpoint,
    sample_training_records,
    split_training,
    train_detectors,
)
from repro.core.reporting import (
    append_metrics_section,
    append_status_section,
    format_series,
    sparkline,
)
from repro.core.resilience import sweep_partial
from repro.core.scenario import Scenario, ScenarioConfig
from repro.exec import SweepPlan, backend_for, execute_plan
from repro.hid.dataset import Dataset
from repro.hid.io import samples_from_records, samples_to_records


def observe_self_labeled(detector, dataset):
    """Online retraining with the labels the defender actually has.

    A runtime HID cannot know ground truth for new traces: windows it
    flagged are confirmed as attacks (analyst triage), windows it
    cleared enter the corpus as benign.  Evasive windows therefore
    *poison* the corpus — the self-training weakness the dynamic
    CR-Spectre exploits to keep the online HID degraded (paper Fig 6b).
    """
    predictions = detector.predict(dataset)
    detector.observe(
        Dataset(dataset.X, predictions, dataset.feature_names)
    )


@dataclasses.dataclass
class Fig6Result:
    spectre: dict
    crspectre: dict
    attacker_history: list  # AttemptRecord per attempt
    attempts: int
    cell_status: dict = dataclasses.field(default_factory=dict)
    cell_metrics: dict = dataclasses.field(default_factory=dict)

    @property
    def partial(self):
        return sweep_partial(self.cell_status)

    def format(self):
        lines = ["Fig. 6(a) — online HID vs plain Spectre "
                 "(accuracy per attempt)"]
        for name, series in self.spectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        lines.append("Fig. 6(b) — online HID vs dynamic CR-Spectre")
        for name, series in self.crspectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        lines.append("  attacker variants per attempt:")
        for record in self.attacker_history:
            lines.append(
                f"    #{record.attempt}: acc={100 * record.accuracy:.1f}% "
                f"{'EVADED' if record.evaded else 'detected'} "
                f"[{record.params.describe()}]"
            )
        text = "\n".join(lines)
        noteworthy = any(
            cell.get("status") not in ("ok", "cached")
            for cell in self.cell_status.values()
        )
        text = append_status_section(
            text, self.cell_status if noteworthy else {}, self.partial
        )
        return append_metrics_section(text, self.cell_metrics)

    def min_accuracy(self):
        return min(v for s in self.crspectre.values() for v in s)

    def headlines(self):
        """Ledger headlines: the dynamic-evasion claim (paper min 16 %)."""
        out = {}
        if self.spectre:
            values = [v for s in self.spectre.values() for v in s]
            out["spectre_mean_accuracy"] = sum(values) / len(values)
        if self.crspectre:
            values = [v for s in self.crspectre.values() for v in s]
            out["crspectre_mean_accuracy"] = sum(values) / len(values)
            out["crspectre_min_accuracy"] = self.min_accuracy()
        return out

    def series(self):
        """Per-detector accuracy-vs-attempt series, plus the attacker's
        own (averaged) feedback series."""
        out = {}
        for phase in ("spectre", "crspectre"):
            for name, values in getattr(self, phase).items():
                out[f"{phase}/{name}"] = list(values)
        if self.attacker_history:
            out["attacker/feedback"] = [
                record.accuracy for record in self.attacker_history
            ]
        return out


def _online_detectors(records, root_seed, detector_names, faults=None):
    """Deterministic re-fit of the retraining detectors from the corpus."""
    benign = samples_from_records(records["benign"])
    attack = samples_from_records(records["attack"])
    train, _ = split_training(benign, attack, seed=root_seed)
    return train_detectors(train, detector_names, seed=root_seed,
                           online=True, faults=faults)


def _spectre_cell(records, root_seed, host, attempts, detector_names,
                  attempt_samples, attempt_benign, audit_every,
                  cell_seed=0, faults=None, scenario=None,
                  uarch="inorder"):
    """Phase (a): plain Spectre vs retraining detectors (one cell)."""
    detectors = _online_detectors(records, root_seed, detector_names,
                                  faults=faults)
    if scenario is None:
        scenario = Scenario(
            ScenarioConfig(host=host, seed=cell_seed, uarch=uarch),
            faults=faults,
        )
    series = {name: [] for name in detector_names}
    for attempt in range(attempts):
        fresh_attack = scenario.attack_samples_mixed_variants(
            attempt_samples
        )
        fresh_benign = scenario.benign_samples(
            attempt_benign, include_extras=False
        )
        dataset = attempt_dataset(fresh_benign, fresh_attack)
        audited = audit_every and (attempt + 1) % audit_every == 0
        for name, detector in detectors.items():
            series[name].append(detector.accuracy_on(dataset))
            if audited:
                detector.observe(dataset)
            else:
                observe_self_labeled(detector, dataset)
    return series


def _crspectre_cell(records, root_seed, host, attempts, detector_names,
                    attempt_samples, attempt_benign, audit_every,
                    cell_seed=0, faults=None, scenario=None,
                    uarch="inorder"):
    """Phase (b): dynamic CR-Spectre vs retraining detectors (one cell)."""
    detectors = _online_detectors(records, root_seed, detector_names,
                                  faults=faults)
    if scenario is None:
        scenario = Scenario(
            ScenarioConfig(host=host, seed=cell_seed, uarch=uarch),
            faults=faults,
        )
    attacker = AdaptiveAttacker(seed=root_seed + 13)
    series = {name: [] for name in detector_names}
    for attempt in range(attempts):
        params = attacker.propose()
        fresh_attack = scenario.attack_samples_mixed_variants(
            attempt_samples, perturb=params
        )
        fresh_benign = scenario.benign_samples(
            attempt_benign, include_extras=False
        )
        dataset = attempt_dataset(fresh_benign, fresh_attack)
        audited = audit_every and (attempt + 1) % audit_every == 0
        accuracies = []
        for name, detector in detectors.items():
            accuracy = detector.accuracy_on(dataset)
            series[name].append(accuracy)
            accuracies.append(accuracy)
            if audited:
                detector.observe(dataset)
            else:
                observe_self_labeled(detector, dataset)
        # The attacker only sees the (averaged) detector verdicts.
        attacker.feedback(sum(accuracies) / len(accuracies))
    return {
        "series": series,
        "history": [
            {
                "attempt": record.attempt,
                "accuracy": record.accuracy,
                "params": dataclasses.asdict(record.params),
            }
            for record in attacker.history
        ],
    }


def plan_fig6(seed=0, host="basicmath", attempts=10,
              detector_names=DETECTOR_NAMES, training_benign=240,
              training_attack=240, attempt_samples=60, attempt_benign=15,
              audit_every=3, scenario=None, training=None, faults=None,
              uarch="inorder"):
    """Declare the Figure-6 cell grid (see the module docstring)."""
    plan = SweepPlan("fig6", seed, faults=faults)
    local = scenario is not None
    shared = {"scenario": scenario} if local else {}
    shared["uarch"] = uarch
    if training is not None:
        benign, attack = training
        plan.preset("training", {
            "benign": samples_to_records(benign),
            "attack": samples_to_records(attack),
        })
    else:
        plan.add(
            "training", sample_training_records,
            kwargs=dict(host=host, training_benign=training_benign,
                        training_attack=training_attack, **shared),
            seed_kw="cell_seed", faults_kw="faults", local=local,
        )
    phase_kwargs = dict(
        root_seed=seed, host=host, attempts=attempts,
        detector_names=tuple(detector_names),
        attempt_samples=attempt_samples, attempt_benign=attempt_benign,
        audit_every=audit_every,
    )
    plan.add("spectre", _spectre_cell,
             kwargs=dict(phase_kwargs, **shared),
             deps={"records": "training"},
             seed_kw="cell_seed", faults_kw="faults", local=local)
    plan.add("crspectre", _crspectre_cell,
             kwargs=dict(phase_kwargs, **shared),
             deps={"records": "training"},
             seed_kw="cell_seed", faults_kw="faults", local=local)
    return plan


def fig6_meta(seed, host, attempts, detector_names, training_benign,
              training_attack, attempt_samples, attempt_benign,
              audit_every, uarch="inorder"):
    return {
        "seed": seed, "host": host, "attempts": attempts,
        "detector_names": list(detector_names),
        "training_benign": training_benign,
        "training_attack": training_attack,
        "attempt_samples": attempt_samples,
        "attempt_benign": attempt_benign,
        "audit_every": audit_every,
        "uarch": uarch,
    }


def run_fig6(seed=0, host="basicmath", attempts=10,
             detector_names=DETECTOR_NAMES, training_benign=240,
             training_attack=240, attempt_samples=60, attempt_benign=15,
             audit_every=3, scenario=None, training=None, checkpoint=None,
             faults=None, jobs=1, backend=None, progress=None, trace=None,
             traces=None, timings=None, cell_cache=None, profile=None,
             profiles=None, phases=None, uarch="inorder"):
    """Regenerate Figure 6.  Returns a :class:`Fig6Result`.

    ``audit_every``: every k-th attempt the defender's analysts audit
    the window labels (the paper's human-in-the-loop), so that attempt
    is learned with ground truth — the source of the partial recoveries
    in Fig. 6(b); all other attempts retrain self-labeled.
    """
    store = open_checkpoint(checkpoint, "fig6", fig6_meta(
        seed, host, attempts, detector_names, training_benign,
        training_attack, attempt_samples, attempt_benign, audit_every,
        uarch,
    ), trace=trace, profile=profile)
    plan = plan_fig6(seed, host, attempts, detector_names,
                     training_benign, training_attack, attempt_samples,
                     attempt_benign, audit_every, scenario=scenario,
                     training=training, faults=faults, uarch=uarch)
    statuses = {}
    metrics = {}
    results = execute_plan(plan, store=store, statuses=statuses,
                           backend=backend or backend_for(jobs),
                           progress=progress,
                           trace=trace, traces=traces, metrics=metrics,
                           timings=timings, cell_cache=cell_cache,
                           profile=profile, profiles=profiles,
                           phases=phases)

    phase_b_value = results.get("crspectre")
    if phase_b_value is None:
        crspectre_series, attacker_history = {}, []
    else:
        crspectre_series = phase_b_value["series"]
        attacker_history = [
            AttemptRecord(
                attempt=record["attempt"],
                params=PerturbParams(**record["params"]),
                accuracy=record["accuracy"],
            )
            for record in phase_b_value["history"]
        ]

    return Fig6Result(
        spectre=results.get("spectre") or {},
        crspectre=crspectre_series,
        attacker_history=attacker_history,
        attempts=attempts,
        cell_status=statuses,
        cell_metrics=metrics,
    )
