"""Figure 5: offline (static) HID vs Spectre and CR-Spectre, 10 attempts.

(a) Plain Spectre against four static detectors: flat, high accuracy.
(b) CR-Spectre: the attacker pre-tunes *one* perturbation variant
    offline (the paper: "to save the overhead, CR-Spectre only generates
    one variation of perturbation" because a static HID never relearns)
    and replays it; detection collapses below the 55 % evasion line.
"""

import dataclasses

from repro.core.experiments.common import (
    DETECTOR_NAMES,
    attempt_dataset,
    search_evading_params,
    split_training,
    train_detectors,
)
from repro.core.reporting import format_series, sparkline
from repro.core.scenario import Scenario, ScenarioConfig


@dataclasses.dataclass
class Fig5Result:
    spectre: dict       # detector name -> [accuracy per attempt]
    crspectre: dict     # detector name -> [accuracy per attempt]
    chosen_params: object
    search_history: list
    attempts: int

    def format(self):
        lines = ["Fig. 5(a) — offline HID vs plain Spectre "
                 "(accuracy per attempt)"]
        for name, series in self.spectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        lines.append("Fig. 5(b) — offline HID vs CR-Spectre "
                     f"(fixed variant: {self.chosen_params.describe()})")
        for name, series in self.crspectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        return "\n".join(lines)

    def mean_accuracy(self, which="crspectre"):
        series = getattr(self, which)
        values = [v for s in series.values() for v in s]
        return sum(values) / len(values)


def run_fig5(seed=0, host="basicmath", attempts=10,
             detector_names=DETECTOR_NAMES, training_benign=240,
             training_attack=240, attempt_samples=60, attempt_benign=20,
             scenario=None, training=None):
    """Regenerate Figure 5.  Returns a :class:`Fig5Result`.

    ``scenario``/``training`` allow reuse of an already-staged campaign
    (the fig5+fig6 benches share the expensive sampling phase).
    """
    if scenario is None:
        scenario = Scenario(ScenarioConfig(host=host, seed=seed))
    if training is None:
        benign = scenario.benign_samples(training_benign)
        attack = scenario.attack_samples_mixed_variants(training_attack)
        training = (benign, attack)
    benign, attack = training

    train, _test = split_training(benign, attack, seed=seed)
    detectors = train_detectors(train, detector_names, seed=seed)

    # ---- (a) plain Spectre --------------------------------------------
    spectre_series = {name: [] for name in detector_names}
    for attempt in range(attempts):
        fresh_attack = scenario.attack_samples_mixed_variants(
            attempt_samples
        )
        fresh_benign = scenario.benign_samples(
            attempt_benign, include_extras=False
        )
        dataset = attempt_dataset(fresh_benign, fresh_attack)
        for name, detector in detectors.items():
            spectre_series[name].append(detector.accuracy_on(dataset))

    # ---- (b) CR-Spectre with one pre-tuned variant ----------------------
    import random
    params, history = search_evading_params(
        scenario, detectors, benign, rng=random.Random(seed + 77),
    )
    crspectre_series = {name: [] for name in detector_names}
    for attempt in range(attempts):
        fresh_attack = scenario.attack_samples_mixed_variants(
            attempt_samples, perturb=params
        )
        fresh_benign = scenario.benign_samples(
            attempt_benign, include_extras=False
        )
        dataset = attempt_dataset(fresh_benign, fresh_attack)
        for name, detector in detectors.items():
            crspectre_series[name].append(detector.accuracy_on(dataset))

    return Fig5Result(
        spectre=spectre_series,
        crspectre=crspectre_series,
        chosen_params=params,
        search_history=history,
        attempts=attempts,
    )
