"""Figure 5: offline (static) HID vs Spectre and CR-Spectre, 10 attempts.

(a) Plain Spectre against four static detectors: flat, high accuracy.
(b) CR-Spectre: the attacker pre-tunes *one* perturbation variant
    offline (the paper: "to save the overhead, CR-Spectre only generates
    one variation of perturbation" because a static HID never relearns)
    and replays it; detection collapses below the 55 % evasion line.

Cell grid (the declared :class:`~repro.exec.SweepPlan`)::

    training ──┬── spectre/attempt/<i>      (phase a, one cell each)
               ├── search                   (offline pre-tuning, phase b)
               └──── crspectre/attempt/<i>  (phase b, depends on search)

Every attempt is its own cell: it stages a fresh campaign from its
derived seed and re-fits the (deterministic) detectors from the shared
training corpus, so cells are order-independent and a ``--jobs N`` run
is bit-identical to a serial one.  A resumed run replays completed
cells from the checkpoint and recomputes only the rest; an injected
fault degrades the affected cell into a partial report.
"""

import dataclasses

from repro.attack import PerturbParams
from repro.core.experiments.common import (
    DETECTOR_NAMES,
    attempt_dataset,
    open_checkpoint,
    sample_training_records,
    search_evading_params,
    split_training,
    train_detectors,
)
from repro.core.reporting import (
    append_metrics_section,
    append_status_section,
    format_series,
    sparkline,
)
from repro.core.resilience import sweep_partial
from repro.core.scenario import Scenario, ScenarioConfig
from repro.exec import SweepPlan, backend_for, execute_plan
from repro.hid.io import samples_from_records, samples_to_records


@dataclasses.dataclass
class Fig5Result:
    spectre: dict       # detector name -> [accuracy per attempt]
    crspectre: dict     # detector name -> [accuracy per attempt]
    chosen_params: object
    search_history: list
    attempts: int
    cell_status: dict = dataclasses.field(default_factory=dict)
    cell_metrics: dict = dataclasses.field(default_factory=dict)

    @property
    def partial(self):
        return sweep_partial(self.cell_status)

    def format(self):
        lines = ["Fig. 5(a) — offline HID vs plain Spectre "
                 "(accuracy per attempt)"]
        for name, series in self.spectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        chosen = (self.chosen_params.describe()
                  if self.chosen_params is not None else "n/a")
        lines.append("Fig. 5(b) — offline HID vs CR-Spectre "
                     f"(fixed variant: {chosen})")
        for name, series in self.crspectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        text = "\n".join(lines)
        noteworthy = {
            key: cell for key, cell in self.cell_status.items()
            if cell.get("status") not in ("ok", "cached")
        }
        text = append_status_section(
            text, self.cell_status if noteworthy else {}, self.partial
        )
        return append_metrics_section(text, self.cell_metrics)

    def mean_accuracy(self, which="crspectre"):
        series = getattr(self, which)
        values = [v for s in series.values() for v in s]
        return sum(values) / len(values)

    def headlines(self):
        """Ledger headlines: the offline-evasion claim (paper ≤ 55 %)."""
        out = {}
        if self.spectre:
            out["spectre_mean_accuracy"] = self.mean_accuracy("spectre")
        if self.crspectre:
            out["crspectre_mean_accuracy"] = \
                self.mean_accuracy("crspectre")
            out["crspectre_min_accuracy"] = min(
                v for s in self.crspectre.values() for v in s
            )
        return out

    def series(self):
        """Per-detector accuracy-vs-attempt series for both phases."""
        out = {}
        for phase in ("spectre", "crspectre"):
            for name, values in getattr(self, phase).items():
                out[f"{phase}/{name}"] = list(values)
        return out


def _fit_detectors(records, root_seed, detector_names, faults=None):
    """The static detectors, re-fit deterministically from the corpus.

    Fitting is a pure function of (corpus, root seed), so every attempt
    cell reconstructs the *same* detectors the deployed HID would run —
    the price of order-independent cells is refitting, not divergence.
    """
    benign = samples_from_records(records["benign"])
    attack = samples_from_records(records["attack"])
    train, _ = split_training(benign, attack, seed=root_seed)
    detectors = train_detectors(train, detector_names, seed=root_seed,
                                faults=faults)
    return benign, detectors


def _attempt_cell(records, root_seed, host, detector_names,
                  attempt_samples, attempt_benign, perturb_fields=None,
                  search=None, cell_seed=0, faults=None, scenario=None,
                  uarch="inorder"):
    """One attack attempt: fresh campaign, fixed detectors.

    Returns ``{detector name: accuracy}``.  ``search`` (the search
    cell's value) supplies the pre-tuned perturbation for phase (b);
    ``perturb_fields`` pins one explicitly instead.
    """
    _, detectors = _fit_detectors(records, root_seed, detector_names,
                                  faults=faults)
    if scenario is None:
        scenario = Scenario(
            ScenarioConfig(host=host, seed=cell_seed, uarch=uarch),
            faults=faults,
        )
    perturb = None
    if search is not None:
        perturb_fields = search["params"]
    if perturb_fields is not None:
        perturb = PerturbParams(**perturb_fields)
    fresh_attack = scenario.attack_samples_mixed_variants(
        attempt_samples, perturb=perturb
    )
    fresh_benign = scenario.benign_samples(
        attempt_benign, include_extras=False
    )
    dataset = attempt_dataset(fresh_benign, fresh_attack)
    return {
        name: detector.accuracy_on(dataset)
        for name, detector in detectors.items()
    }


def _search_cell(records, root_seed, host, detector_names,
                 cell_seed=0, faults=None, scenario=None,
                 uarch="inorder"):
    """Offline pre-tuning of the single perturbation variant (Fig. 5b).

    The attacker probes the deployed (static) HID with candidate
    perturbations until the detectors' mean accuracy drops to the
    evasion threshold.
    """
    import random

    benign, detectors = _fit_detectors(records, root_seed, detector_names,
                                       faults=faults)
    if scenario is None:
        scenario = Scenario(
            ScenarioConfig(host=host, seed=cell_seed, uarch=uarch),
            faults=faults,
        )
    params, history = search_evading_params(
        scenario, detectors, benign, rng=random.Random(root_seed + 77),
    )
    return {
        "params": dataclasses.asdict(params),
        "history": [
            [dataclasses.asdict(p), accuracy] for p, accuracy in history
        ],
    }


def plan_fig5(seed=0, host="basicmath", attempts=10,
              detector_names=DETECTOR_NAMES, training_benign=240,
              training_attack=240, attempt_samples=60, attempt_benign=20,
              scenario=None, training=None, faults=None,
              uarch="inorder"):
    """Declare the Figure-5 cell grid (see the module docstring).

    ``scenario``/``training`` allow reuse of an already-staged campaign
    (the fig5+fig6 benches share the expensive sampling phase); cells
    then close over live state, which pins the plan to the serial
    backend.
    """
    plan = SweepPlan("fig5", seed, faults=faults)
    local = scenario is not None
    shared = {"scenario": scenario} if local else {}
    shared["uarch"] = uarch
    if training is not None:
        benign, attack = training
        plan.preset("training", {
            "benign": samples_to_records(benign),
            "attack": samples_to_records(attack),
        })
    else:
        plan.add(
            "training", sample_training_records,
            kwargs=dict(host=host, training_benign=training_benign,
                        training_attack=training_attack, **shared),
            seed_kw="cell_seed", faults_kw="faults", local=local,
        )
    attempt_kwargs = dict(
        root_seed=seed, host=host, detector_names=tuple(detector_names),
        attempt_samples=attempt_samples, attempt_benign=attempt_benign,
    )
    for attempt in range(attempts):
        plan.add(
            f"spectre/attempt/{attempt}", _attempt_cell,
            kwargs=dict(attempt_kwargs, **shared),
            deps={"records": "training"},
            seed_kw="cell_seed", faults_kw="faults", local=local,
        )
    plan.add(
        "search", _search_cell,
        kwargs=dict(root_seed=seed, host=host,
                    detector_names=tuple(detector_names), **shared),
        deps={"records": "training"},
        seed_kw="cell_seed", faults_kw="faults", local=local,
    )
    for attempt in range(attempts):
        plan.add(
            f"crspectre/attempt/{attempt}", _attempt_cell,
            kwargs=dict(attempt_kwargs, **shared),
            deps={"records": "training", "search": "search"},
            seed_kw="cell_seed", faults_kw="faults", local=local,
        )
    return plan


def fig5_meta(seed, host, attempts, detector_names, training_benign,
              training_attack, attempt_samples, attempt_benign,
              uarch="inorder"):
    return {
        "seed": seed, "host": host, "attempts": attempts,
        "detector_names": list(detector_names),
        "training_benign": training_benign,
        "training_attack": training_attack,
        "attempt_samples": attempt_samples,
        "attempt_benign": attempt_benign,
        "uarch": uarch,
    }


def _collect_series(results, phase, attempts, detector_names):
    """Per-detector accuracy series from the completed attempt cells."""
    series = {name: [] for name in detector_names}
    seen = False
    for attempt in range(attempts):
        value = results.get(f"{phase}/attempt/{attempt}")
        if value is None:
            continue
        seen = True
        for name in detector_names:
            series[name].append(value[name])
    return series if seen else {}


def run_fig5(seed=0, host="basicmath", attempts=10,
             detector_names=DETECTOR_NAMES, training_benign=240,
             training_attack=240, attempt_samples=60, attempt_benign=20,
             scenario=None, training=None, checkpoint=None, faults=None,
             jobs=1, backend=None, progress=None, trace=None,
             traces=None, timings=None, cell_cache=None, profile=None,
             profiles=None, phases=None, uarch="inorder"):
    """Regenerate Figure 5.  Returns a :class:`Fig5Result`."""
    store = open_checkpoint(checkpoint, "fig5", fig5_meta(
        seed, host, attempts, detector_names, training_benign,
        training_attack, attempt_samples, attempt_benign, uarch,
    ), trace=trace, profile=profile)
    plan = plan_fig5(seed, host, attempts, detector_names,
                     training_benign, training_attack, attempt_samples,
                     attempt_benign, scenario=scenario, training=training,
                     faults=faults, uarch=uarch)
    statuses = {}
    metrics = {}
    results = execute_plan(plan, store=store, statuses=statuses,
                           backend=backend or backend_for(jobs),
                           progress=progress,
                           trace=trace, traces=traces, metrics=metrics,
                           timings=timings, cell_cache=cell_cache,
                           profile=profile, profiles=profiles,
                           phases=phases)

    search = results.get("search")
    if search is None:
        chosen_params, search_history = None, []
    else:
        chosen_params = PerturbParams(**search["params"])
        search_history = [
            (PerturbParams(**fields), accuracy)
            for fields, accuracy in search["history"]
        ]
    return Fig5Result(
        spectre=_collect_series(results, "spectre", attempts,
                                detector_names),
        crspectre=_collect_series(results, "crspectre", attempts,
                                  detector_names),
        chosen_params=chosen_params,
        search_history=search_history,
        attempts=attempts,
        cell_status=statuses,
        cell_metrics=metrics,
    )
