"""Figure 5: offline (static) HID vs Spectre and CR-Spectre, 10 attempts.

(a) Plain Spectre against four static detectors: flat, high accuracy.
(b) CR-Spectre: the attacker pre-tunes *one* perturbation variant
    offline (the paper: "to save the overhead, CR-Spectre only generates
    one variation of perturbation" because a static HID never relearns)
    and replays it; detection collapses below the 55 % evasion line.

Sweep cells (checkpoint/resume granularity): ``training`` (the sampled
corpus), ``spectre`` (phase a) and ``crspectre`` (phase b).  A resumed
run replays completed cells from the checkpoint and recomputes only the
rest; an injected fault degrades the affected cell into a partial
report.
"""

import dataclasses

from repro.attack import PerturbParams
from repro.core.experiments.common import (
    DETECTOR_NAMES,
    attempt_dataset,
    open_checkpoint,
    search_evading_params,
    split_training,
    train_detectors,
)
from repro.core.reporting import (
    append_status_section,
    format_series,
    sparkline,
)
from repro.core.resilience import run_cell, sweep_partial
from repro.core.scenario import Scenario, ScenarioConfig
from repro.hid.io import samples_from_records, samples_to_records


@dataclasses.dataclass
class Fig5Result:
    spectre: dict       # detector name -> [accuracy per attempt]
    crspectre: dict     # detector name -> [accuracy per attempt]
    chosen_params: object
    search_history: list
    attempts: int
    cell_status: dict = dataclasses.field(default_factory=dict)

    @property
    def partial(self):
        return sweep_partial(self.cell_status)

    def format(self):
        lines = ["Fig. 5(a) — offline HID vs plain Spectre "
                 "(accuracy per attempt)"]
        for name, series in self.spectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        chosen = (self.chosen_params.describe()
                  if self.chosen_params is not None else "n/a")
        lines.append("Fig. 5(b) — offline HID vs CR-Spectre "
                     f"(fixed variant: {chosen})")
        for name, series in self.crspectre.items():
            values = [100.0 * v for v in series]
            lines.append(
                "  " + format_series(f"{name:>4}", values)
                + "  " + sparkline(values, 0, 100)
            )
        text = "\n".join(lines)
        noteworthy = {
            key: cell for key, cell in self.cell_status.items()
            if cell.get("status") != "ok"
        }
        return append_status_section(
            text, self.cell_status if noteworthy else {}, self.partial
        )

    def mean_accuracy(self, which="crspectre"):
        series = getattr(self, which)
        values = [v for s in series.values() for v in s]
        return sum(values) / len(values)


def run_fig5(seed=0, host="basicmath", attempts=10,
             detector_names=DETECTOR_NAMES, training_benign=240,
             training_attack=240, attempt_samples=60, attempt_benign=20,
             scenario=None, training=None, checkpoint=None, faults=None):
    """Regenerate Figure 5.  Returns a :class:`Fig5Result`.

    ``scenario``/``training`` allow reuse of an already-staged campaign
    (the fig5+fig6 benches share the expensive sampling phase).
    """
    store = open_checkpoint(checkpoint, "fig5", {
        "seed": seed, "host": host, "attempts": attempts,
        "detector_names": list(detector_names),
        "training_benign": training_benign,
        "training_attack": training_attack,
        "attempt_samples": attempt_samples,
        "attempt_benign": attempt_benign,
    })
    statuses = {}
    if scenario is None:
        scenario = Scenario(ScenarioConfig(host=host, seed=seed),
                            faults=faults)

    if training is None:
        records = run_cell(
            "training",
            lambda: {
                "benign": samples_to_records(
                    scenario.benign_samples(training_benign)
                ),
                "attack": samples_to_records(
                    scenario.attack_samples_mixed_variants(training_attack)
                ),
            },
            store=store, statuses=statuses,
        )
        if records is None:
            return Fig5Result(
                spectre={}, crspectre={}, chosen_params=None,
                search_history=[], attempts=attempts, cell_status=statuses,
            )
        training = (samples_from_records(records["benign"]),
                    samples_from_records(records["attack"]))
    benign, attack = training

    detectors = run_cell(
        "detectors",
        lambda: train_detectors(
            split_training(benign, attack, seed=seed)[0],
            detector_names, seed=seed, faults=faults,
        ),
        store=None, statuses=statuses,  # models are not serialisable
    )
    if detectors is None:
        return Fig5Result(
            spectre={}, crspectre={}, chosen_params=None,
            search_history=[], attempts=attempts, cell_status=statuses,
        )

    # ---- (a) plain Spectre --------------------------------------------
    def phase_a():
        series = {name: [] for name in detector_names}
        for _attempt in range(attempts):
            fresh_attack = scenario.attack_samples_mixed_variants(
                attempt_samples
            )
            fresh_benign = scenario.benign_samples(
                attempt_benign, include_extras=False
            )
            dataset = attempt_dataset(fresh_benign, fresh_attack)
            for name, detector in detectors.items():
                series[name].append(detector.accuracy_on(dataset))
        return series

    spectre_series = run_cell("spectre", phase_a,
                              store=store, statuses=statuses) or {}

    # ---- (b) CR-Spectre with one pre-tuned variant ----------------------
    def phase_b():
        import random
        params, history = search_evading_params(
            scenario, detectors, benign, rng=random.Random(seed + 77),
        )
        series = {name: [] for name in detector_names}
        for _attempt in range(attempts):
            fresh_attack = scenario.attack_samples_mixed_variants(
                attempt_samples, perturb=params
            )
            fresh_benign = scenario.benign_samples(
                attempt_benign, include_extras=False
            )
            dataset = attempt_dataset(fresh_benign, fresh_attack)
            for name, detector in detectors.items():
                series[name].append(detector.accuracy_on(dataset))
        return {
            "series": series,
            "params": dataclasses.asdict(params),
            "history": [
                [dataclasses.asdict(p), accuracy]
                for p, accuracy in history
            ],
        }

    phase_b_value = run_cell("crspectre", phase_b,
                             store=store, statuses=statuses)
    if phase_b_value is None:
        crspectre_series, chosen_params, search_history = {}, None, []
    else:
        crspectre_series = phase_b_value["series"]
        chosen_params = PerturbParams(**phase_b_value["params"])
        search_history = [
            (PerturbParams(**fields), accuracy)
            for fields, accuracy in phase_b_value["history"]
        ]

    return Fig5Result(
        spectre=spectre_series,
        crspectre=crspectre_series,
        chosen_params=chosen_params,
        search_history=search_history,
        attempts=attempts,
        cell_status=statuses,
    )
