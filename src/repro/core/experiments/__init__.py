"""Experiment runners: one per table/figure of the paper's evaluation."""

from repro.core.experiments.common import (
    DETECTOR_LEGENDS,
    DETECTOR_NAMES,
    attempt_dataset,
    co_run,
    mean_accuracy,
    search_evading_params,
    split_training,
    train_detectors,
)
from repro.core.experiments.fig4 import Fig4Result, plan_fig4, run_fig4
from repro.core.experiments.hardening import (
    HardeningResult,
    plan_hardening,
    run_hardening,
)
from repro.core.experiments.fig5 import Fig5Result, plan_fig5, run_fig5
from repro.core.experiments.fig6 import Fig6Result, plan_fig6, run_fig6
from repro.core.experiments.table1 import (
    ONLINE_PERTURB,
    OFFLINE_PERTURB,
    TABLE1_ROWS,
    Table1Result,
    Table1Row,
    plan_table1,
    run_table1,
)

__all__ = [
    "DETECTOR_LEGENDS",
    "DETECTOR_NAMES",
    "attempt_dataset",
    "co_run",
    "mean_accuracy",
    "search_evading_params",
    "split_training",
    "train_detectors",
    "Fig4Result",
    "plan_fig4",
    "run_fig4",
    "HardeningResult",
    "plan_hardening",
    "run_hardening",
    "Fig5Result",
    "plan_fig5",
    "run_fig5",
    "Fig6Result",
    "plan_fig6",
    "run_fig6",
    "plan_table1",
    "ONLINE_PERTURB",
    "OFFLINE_PERTURB",
    "TABLE1_ROWS",
    "Table1Result",
    "Table1Row",
    "run_table1",
]
