"""Experiment runners: one per table/figure of the paper's evaluation."""

from repro.core.experiments.common import (
    DETECTOR_LEGENDS,
    DETECTOR_NAMES,
    attempt_dataset,
    co_run,
    mean_accuracy,
    search_evading_params,
    split_training,
    train_detectors,
)
from repro.core.experiments.fig4 import Fig4Result, run_fig4
from repro.core.experiments.hardening import (
    HardeningResult,
    run_hardening,
)
from repro.core.experiments.fig5 import Fig5Result, run_fig5
from repro.core.experiments.fig6 import Fig6Result, run_fig6
from repro.core.experiments.table1 import (
    ONLINE_PERTURB,
    OFFLINE_PERTURB,
    TABLE1_ROWS,
    Table1Result,
    Table1Row,
    run_table1,
)

__all__ = [
    "DETECTOR_LEGENDS",
    "DETECTOR_NAMES",
    "attempt_dataset",
    "co_run",
    "mean_accuracy",
    "search_evading_params",
    "split_training",
    "train_detectors",
    "Fig4Result",
    "run_fig4",
    "HardeningResult",
    "run_hardening",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "ONLINE_PERTURB",
    "OFFLINE_PERTURB",
    "TABLE1_ROWS",
    "Table1Result",
    "Table1Row",
    "run_table1",
]
