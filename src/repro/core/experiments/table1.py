"""Table I: IPC overhead of co-located CR-Spectre on MiBench hosts.

For each benchmark row the host runs to completion three times on a
machine with a shared L2 and context-switch costs:

* alone ("Original Application"),
* co-scheduled with an injected CR-Spectre of the *offline* kind (one
  fixed, moderate perturbation variant),
* co-scheduled with the *online* kind (dynamic, burst-heavier
  perturbation — the extra Algorithm-2 work is why the paper reports
  1.1 % online vs 0.6 % offline).

The overhead is the host's IPC drop; the paper's headline is that it is
negligible (<~1 %).

Each benchmark row is one cell of the declared
:class:`~repro.exec.SweepPlan` — rows build their own simulated
:class:`~repro.kernel.system.System` instances, so they are mutually
independent and fan out cleanly over a process pool (``jobs=N``).
"""

import dataclasses

from repro.attack import (
    PerturbParams,
    SpectreConfig,
    build_spectre,
    plan_execve_injection,
)
from repro.core.experiments.common import co_run, open_checkpoint
from repro.core.reporting import (
    append_metrics_section,
    append_status_section,
    format_table,
)
from repro.core.resilience import Watchdog, sweep_partial
from repro.core.scenario import PROFILE_REPEATS
from repro.errors import BudgetExceededError
from repro.exec import SweepPlan, backend_for, execute_plan
from repro.kernel.system import System
from repro.workloads import get_workload

#: Paper Table I rows: label -> (workload, iterations).  The paper's
#: "50M/100M operations" and SHA input sizes map onto iteration counts
#: (scaled ~1000x down; see EXPERIMENTS.md).
TABLE1_ROWS = (
    ("Math", "basicmath", (400, 800)),      # small + large, averaged
    ("Bitcount 50M", "bitcount", (1500,)),
    ("Bitcount 100M", "bitcount", (3000,)),
    ("SHA 1", "sha", (25,)),
    ("SHA 2", "sha", (50,)),
)

#: Offline-type CR-Spectre: the one fixed variant.
OFFLINE_PERTURB = PerturbParams(delay=1000, calls_per_byte=2)
#: Online-type CR-Spectre: dynamic, burst-heavier (more Algorithm-2 work).
ONLINE_PERTURB = PerturbParams(delay=400, calls_per_byte=4, loop_count=20,
                               extra_loops=3)


@dataclasses.dataclass
class Table1Row:
    benchmark: str
    original_ipc: float
    offline_ipc: float
    online_ipc: float

    @property
    def offline_overhead(self):
        return 1.0 - self.offline_ipc / self.original_ipc

    @property
    def online_overhead(self):
        return 1.0 - self.online_ipc / self.original_ipc


@dataclasses.dataclass
class Table1Result:
    rows: list
    cell_status: dict = dataclasses.field(default_factory=dict)
    cell_metrics: dict = dataclasses.field(default_factory=dict)

    @property
    def partial(self):
        return sweep_partial(self.cell_status)

    def format(self):
        headers = ["Benchmark", "Original (IPC)",
                   "CR-Spectre offline (IPC)", "CR-Spectre online (IPC)",
                   "ovh off", "ovh on"]
        body = [
            [row.benchmark,
             f"{row.original_ipc:.4f}",
             f"{row.offline_ipc:.4f}",
             f"{row.online_ipc:.4f}",
             f"{100 * row.offline_overhead:.2f}%",
             f"{100 * row.online_overhead:.2f}%"]
            for row in self.rows
        ]
        text = format_table(
            headers, body,
            title="Table I — performance overhead in evaluated benchmarks",
        )
        noteworthy = any(
            cell.get("status") not in ("ok", "cached")
            for cell in self.cell_status.values()
        )
        text = append_status_section(
            text, self.cell_status if noteworthy else {}, self.partial
        )
        return append_metrics_section(text, self.cell_metrics)

    def average_overheads(self):
        offline = sum(r.offline_overhead for r in self.rows) / len(self.rows)
        online = sum(r.online_overhead for r in self.rows) / len(self.rows)
        return offline, online

    def headlines(self):
        """Ledger headlines: the paper's 0.6 % / 1.1 % IPC overheads."""
        if not self.rows:
            return {}
        offline, online = self.average_overheads()
        return {
            "offline_ipc_overhead": offline,
            "online_ipc_overhead": online,
            "max_ipc_overhead": max(
                max(r.offline_overhead, r.online_overhead)
                for r in self.rows
            ),
        }

    def series(self):
        """Per-row overhead series, in table order."""
        if not self.rows:
            return {}
        return {
            "offline_overhead_by_row": [
                r.offline_overhead for r in self.rows
            ],
            "online_overhead_by_row": [
                r.online_overhead for r in self.rows
            ],
        }


def _inject_attack(system, host_program, host_path, secret, perturb, tag):
    """Spawn a host instance and ROP-inject a CR-Spectre variant into it."""
    attack_program = build_spectre("v1", SpectreConfig(
        secret_length=len(secret),
        repeats=PROFILE_REPEATS,
        perturb=perturb,
    ))
    path = f"/bin/.cr_{tag}"
    system.install_binary(path, attack_program)
    plan = plan_execve_injection(host_program, host_path, path)
    return system.spawn(host_path, argv=plan.argv)


def _measure_host_ipc(seed, workload_name, iterations, secret,
                      perturb=None, dynamic=False, quantum=10_000,
                      rotate_quanta=40, watchdog=None, uarch="inorder"):
    """Host IPC to completion, optionally next to an injected attack.

    ``dynamic=True`` models the *online-type* CR-Spectre campaign: the
    attack is periodically torn down and re-injected with mutated
    Algorithm-2 parameters (the paper's variant regeneration), which is
    what costs slightly more than the offline single-variant execution.
    A *watchdog* bounds the whole measurement: a host that never
    completes (runaway injection) raises
    :class:`~repro.errors.BudgetExceededError` instead of re-entering
    the rotation loop forever.
    """
    import random

    from repro.attack.perturb import mutate

    system = System(seed=seed, target_data=secret, shared_l2=True,
                    uarch=uarch)
    workload = get_workload(workload_name)
    host_program = workload.build(iterations=iterations, hosted=True)
    host_path = f"/bin/{workload_name}"
    system.install_binary(host_path, host_program)

    host = system.spawn(host_path)

    if perturb is None:
        co_run([host], quantum=quantum, until=lambda: not host.alive,
               watchdog=watchdog)
        return host.pmu.ipc

    # The HID itself runs on the machine: the offline type only samples
    # HPCs (light daemon), the online type also retrains on its trace
    # matrix (heavy, L2-streaming daemon) — the source of the paper's
    # higher online overhead.
    daemon_workload = get_workload(
        "hid_daemon_heavy" if dynamic else "hid_daemon_light"
    )
    system.install_binary(
        "/bin/.hidd", daemon_workload.build(iterations=1 << 28)
    )
    daemon = system.spawn("/bin/.hidd")

    rng = random.Random(seed + 7)
    params = perturb
    injected = _inject_attack(
        system, host_program, host_path, secret, params, tag=0
    )
    rotations = 0
    while host.alive:
        window = rotate_quanta if dynamic else 1_000_000
        co_run([host, injected, daemon], quantum=quantum,
               until=lambda: not host.alive, max_quanta=window,
               watchdog=watchdog)
        if dynamic and host.alive:
            # Variant regeneration: fresh injection, mutated parameters.
            injected.cpu.state.halted = True
            rotations += 1
            params = mutate(params, rng, aggressiveness=1.0)
            injected = _inject_attack(
                system, host_program, host_path, secret, params,
                tag=rotations,
            )
    return host.pmu.ipc


def _row_cell(label, workload_name, iteration_choices, root_seed, secret,
              repetitions, quantum, measurement_budget, cell_seed=0,
              faults=None, uarch="inorder"):
    """One benchmark row: original/offline/online IPC, averaged.

    The System seeds derive from the *root* seed (``seed + 1000 * rep``,
    as the serial sweep always did) so the measured IPCs are a function
    of the row alone — the cell's derived seed only drives its fault
    stream.
    """
    if faults is not None and faults.runaway_fired(f"table1:{label}"):
        limit = measurement_budget or 5_000_000
        raise BudgetExceededError(
            f"injected runaway speculation in row {label!r}",
            consumed=limit, budget=limit, label=f"table1:{label}",
        )
    secret = secret.encode("latin-1")
    original, offline, online = [], [], []
    for repetition in range(repetitions):
        rep_seed = root_seed + 1000 * repetition
        for iterations in iteration_choices:
            def budget():
                if measurement_budget is None:
                    return None
                return Watchdog(measurement_budget,
                                label=f"table1:{label}")
            original.append(_measure_host_ipc(
                rep_seed, workload_name, iterations, secret,
                perturb=None, quantum=quantum, watchdog=budget(),
                uarch=uarch,
            ))
            offline.append(_measure_host_ipc(
                rep_seed, workload_name, iterations, secret,
                perturb=OFFLINE_PERTURB, quantum=quantum,
                watchdog=budget(), uarch=uarch,
            ))
            online.append(_measure_host_ipc(
                rep_seed, workload_name, iterations, secret,
                perturb=ONLINE_PERTURB, dynamic=True, quantum=quantum,
                watchdog=budget(), uarch=uarch,
            ))
    return {
        "original": sum(original) / len(original),
        "offline": sum(offline) / len(offline),
        "online": sum(online) / len(online),
    }


def plan_table1(seed=0, rows=TABLE1_ROWS, secret=b"TheMagicWords!!!",
                repetitions=3, quantum=10_000, measurement_budget=None,
                faults=None, uarch="inorder"):
    """Declare the Table-I cell grid: one independent cell per row."""
    plan = SweepPlan("table1", seed, faults=faults)
    for label, workload_name, iteration_choices in rows:
        plan.add(
            f"row/{label}", _row_cell,
            kwargs=dict(
                label=label, workload_name=workload_name,
                iteration_choices=list(iteration_choices),
                root_seed=seed, secret=secret.decode("latin-1"),
                repetitions=repetitions, quantum=quantum,
                measurement_budget=measurement_budget,
                uarch=uarch,
            ),
            seed_kw="cell_seed", faults_kw="faults",
        )
    return plan


def table1_meta(seed, rows, secret, repetitions, quantum,
                uarch="inorder"):
    return {
        "seed": seed,
        "rows": [list(row[:2]) + [list(row[2])] for row in rows],
        "secret": secret.decode("latin-1"),
        "repetitions": repetitions,
        "quantum": quantum,
        "uarch": uarch,
    }


def run_table1(seed=0, rows=TABLE1_ROWS, secret=b"TheMagicWords!!!",
               repetitions=3, quantum=10_000, checkpoint=None,
               measurement_budget=None, faults=None, jobs=1,
               backend=None, progress=None, trace=None, traces=None,
               timings=None, cell_cache=None, profile=None,
               profiles=None, phases=None, uarch="inorder"):
    """Regenerate Table I.  Returns a :class:`Table1Result`.

    ``repetitions`` mirrors the paper's averaging over repeated runs
    ("iterating the same application 100 times", scaled down).  Each
    benchmark row is one sweep cell; ``measurement_budget`` (instructions)
    arms a per-measurement watchdog so a runaway co-schedule fails typed
    instead of hanging.  *faults* may inject ``runaway_speculation``:
    the affected row trips its (real or implied) budget and degrades
    into a failed cell rather than spinning forever.
    """
    store = open_checkpoint(checkpoint, "table1", table1_meta(
        seed, rows, secret, repetitions, quantum, uarch,
    ), trace=trace, profile=profile)
    plan = plan_table1(seed, rows, secret, repetitions, quantum,
                       measurement_budget=measurement_budget,
                       faults=faults, uarch=uarch)
    statuses = {}
    metrics = {}
    results = execute_plan(plan, store=store, statuses=statuses,
                           backend=backend or backend_for(jobs),
                           progress=progress,
                           trace=trace, traces=traces, metrics=metrics,
                           timings=timings, cell_cache=cell_cache,
                           profile=profile, profiles=profiles,
                           phases=phases)
    result_rows = []
    for label, _workload, _iterations in rows:
        value = results.get(f"row/{label}")
        if value is not None:
            result_rows.append(Table1Row(
                benchmark=label,
                original_ipc=value["original"],
                offline_ipc=value["offline"],
                online_ipc=value["online"],
            ))
    return Table1Result(rows=result_rows, cell_status=statuses,
                        cell_metrics=metrics)
