"""Plain-text rendering of experiment results (tables + series).

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output consistent.
"""


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(w) for h, w in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(
            str(cell).ljust(w) for cell, w in zip(row, widths)
        ))
    return "\n".join(lines)


def format_series(name, values, fmt="{:.1f}"):
    """One figure line: ``name: v1 v2 v3 ...``."""
    rendered = " ".join(fmt.format(v) for v in values)
    return f"{name}: {rendered}"


def format_percent(value):
    return f"{100.0 * value:.1f}%"


def format_cell_status(statuses, title="sweep cells"):
    """Render a sweep's per-cell status block (resilient reporting).

    ``statuses`` maps cell key → ``{"status": ..., "error": ...}`` as
    produced by :func:`repro.core.resilience.run_cell`.  Failed cells
    show their error chain, so a partially-failed sweep still emits a
    usable report instead of crashing.
    """
    if not statuses:
        return ""
    lines = [f"{title}:"]
    for key in sorted(statuses):
        cell = statuses[key]
        status = cell.get("status", "?")
        line = f"  [{status:>6}] {key}"
        error = cell.get("error")
        if error:
            line += f"  — {error}"
        lines.append(line)
    return "\n".join(lines)


def append_status_section(text, statuses, partial):
    """Attach the cell-status block (and a partial banner) to a report."""
    if not statuses:
        return text
    block = format_cell_status(statuses)
    if partial:
        block += (
            "\nWARNING: partial results — one or more cells failed; "
            "values above cover the completed cells only."
        )
    return f"{text}\n{block}"


def append_metrics_section(text, cell_metrics, title="cell metrics"):
    """Attach per-cell metric headlines to a report (``--trace`` runs).

    ``cell_metrics`` maps cell key → a metrics snapshot as produced by
    :meth:`repro.obs.MetricsRegistry.snapshot`.  Untraced runs pass an
    empty dict and the report is returned unchanged, byte-identical to
    historical output.
    """
    from repro.obs.metrics import format_metrics_line

    if not cell_metrics:
        return text
    lines = [f"{title}:"]
    for key in sorted(cell_metrics):
        rendered = format_metrics_line(cell_metrics[key]) or "-"
        lines.append(f"  {key}: {rendered}")
    return f"{text}\n" + "\n".join(lines)


def format_duration(seconds):
    """Compact human wall-clock rendering (``850ms``, ``12.3s``, ``2m05s``)."""
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:02.0f}s"


def format_progress(experiment, done, total, key, status, elapsed,
                    eta_seconds=None, metrics=None, rate=None, cache=None,
                    requeues=None):
    """One live sweep-progress line (``repro.exec`` cell completions).

    *metrics* (a pre-rendered ``cycles=… miss=…`` string) rides along
    when the sweep traces, so the stderr stream doubles as a coarse
    per-cell cost profile.  *rate* is observed throughput in cells/s;
    *cache* is a pre-rendered ``hits/lookups`` cell-cache ratio;
    *requeues* is the dist backend's running requeued-cell count
    (only shown once nonzero — a healthy fleet stays quiet).
    """
    line = (f"[{experiment} {done}/{total}] {status:>6} {key} "
            f"({format_duration(elapsed)})")
    if metrics:
        line += f"  [{metrics}]"
    if rate is not None:
        line += f"  {rate:.0f} cells/s" if rate >= 10 \
            else f"  {rate:.2f} cells/s"
    if cache is not None:
        line += f"  cache {cache}"
    if requeues:
        line += f"  req {requeues}"
    if eta_seconds is not None and done < total:
        line += f"  eta ~{format_duration(eta_seconds)}"
    return line


def sparkline(values, lo=None, hi=None):
    """Tiny unicode trend strip for accuracy-vs-attempt series."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = (hi - lo) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1,
                   int((value - lo) / span * (len(blocks) - 1)))]
        for value in values
    )
