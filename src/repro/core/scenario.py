"""Scenario runner: the glue that stages one CR-Spectre campaign.

Owns a :class:`~repro.kernel.system.System` with the host (vulnerable
build), other benign applications and attack binaries installed, and
produces labelled profiler samples on demand — benign streams from the
white-listed applications, attack streams from an actual ROP injection
followed by in-place ``execve`` of the generated Spectre binary.
"""

import dataclasses

from repro.attack import (
    SpectreConfig,
    build_spectre,
    plan_execve_injection,
)
from repro.errors import AttackError
from repro.hid.dataset import ATTACK, BENIGN
from repro.hid.profiler import Profiler
from repro.kernel.process import ProcessState
from repro.kernel.system import System
from repro.workloads import get_workload

#: Effectively-infinite loop counts so profiled processes never run dry.
PROFILE_ITERATIONS = 1 << 28
PROFILE_REPEATS = 1 << 20

DEFAULT_SECRET = b"TheMagicWords!!!"


@dataclasses.dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of one campaign (paper Section III-A, scaled)."""

    host: str = "basicmath"
    benign_apps: tuple = ("browser", "editor")
    secret: bytes = DEFAULT_SECRET
    seed: int = 0
    quantum: int = 2000
    measurement_noise: float = 0.05
    spectre_variants: tuple = ("v1", "rsb", "sbo")
    training_rounds: int = 6
    stride: int = 64
    #: Microarchitecture of every machine this campaign stages
    #: (``repro.uarch`` registry name: "inorder" or "ooo").
    uarch: str = "inorder"


class Scenario:
    """One installed machine + sampling helpers.

    *faults* (a :class:`~repro.core.resilience.FaultInjector`) threads
    the resilience layer through sampling: armed ``hpc_drop`` /
    ``hpc_garble`` kinds degrade every batch of profiler windows, and
    ``cache_corruption`` invalidates the profiled process's caches before
    sampling — the degradation paths the robustness tests exercise.
    """

    def __init__(self, config=None, faults=None):
        self.config = config or ScenarioConfig()
        self.faults = faults
        cfg = self.config
        self.system = System(
            seed=cfg.seed,
            target_data=cfg.secret,
            quantum=cfg.quantum,
            uarch=cfg.uarch,
        )
        self.profiler = Profiler(
            quantum=cfg.quantum,
            noise=cfg.measurement_noise,
            seed=cfg.seed,
        )
        self._installed_attacks = {}

        self.host_workload = get_workload(cfg.host)
        self.host_program = self.host_workload.build(
            iterations=PROFILE_ITERATIONS, hosted=True
        )
        self.host_path = f"/bin/{cfg.host}"
        self.system.install_binary(self.host_path, self.host_program)

        for app in cfg.benign_apps:
            workload = get_workload(app)
            self.system.install_binary(
                f"/bin/{app}",
                workload.build(iterations=PROFILE_ITERATIONS),
            )

    # ---- attack binary management -----------------------------------------
    def _attack_config(self, perturb):
        cfg = self.config
        return SpectreConfig(
            secret_length=len(cfg.secret),
            repeats=PROFILE_REPEATS,
            training_rounds=cfg.training_rounds,
            stride=cfg.stride,
            perturb=perturb,
        )

    def install_attack(self, variant, perturb=None):
        """Build + install a Spectre binary; returns its path."""
        key = (variant, perturb)
        if key in self._installed_attacks:
            return self._installed_attacks[key]
        program = build_spectre(variant, self._attack_config(perturb))
        path = f"/bin/.cr_{variant}_{len(self._installed_attacks)}"
        self.system.install_binary(path, program)
        self._installed_attacks[key] = path
        return path

    # ---- sampling ------------------------------------------------------
    def _degrade(self, samples, context):
        """Run a fresh batch through the fault injector, if armed."""
        if self.faults is None:
            return samples
        return self.faults.filter_samples(samples, context=context)

    def benign_samples(self, num_samples, include_extras=True):
        """Windows from the host + the other benign applications."""
        sources = [self.host_path]
        if include_extras:
            sources += [f"/bin/{app}" for app in self.config.benign_apps]
        per_source = max(1, num_samples // len(sources))
        samples = []
        for path in sources:
            process = self.system.spawn(path)
            if self.faults is not None:
                self.faults.corrupt_cache(
                    process.cpu.caches, context=f"benign:{path}"
                )
            samples.extend(
                self.profiler.profile(process, per_source, label=BENIGN)
            )
        samples = (
            samples[:num_samples] if len(samples) > num_samples else samples
        )
        return self._degrade(samples, "benign_samples")

    def attack_samples(self, num_samples, variant="v1", perturb=None):
        """Windows from one injected attack run (the paper's Fig. 1 flow).

        Spawns the vulnerable host with the Listing-1 payload as argv[1];
        the ROP chain fires during the first window and the remaining
        windows profile the (possibly perturbed) Spectre binary executing
        under the host's PID.
        """
        from repro.obs.tracer import current_tracer
        current_tracer().event(
            "attack.samples", "attack", variant=variant,
            perturbed=perturb is not None, samples=num_samples,
        )
        attack_path = self.install_attack(variant, perturb)
        plan = plan_execve_injection(
            self.host_program, self.host_path, attack_path
        )
        process = self.system.spawn(self.host_path, argv=plan.argv)
        if self.faults is not None:
            self.faults.corrupt_cache(
                process.cpu.caches, context=f"attack:{variant}"
            )
        samples = self.profiler.profile(process, num_samples, label=ATTACK)
        if process.state == ProcessState.FAULTED:
            raise AttackError(
                f"injection into {self.host_path} faulted: {process.fault}"
            )
        if process.image_name == self.host_program.name:
            raise AttackError("execve never happened; payload did not fire")
        return self._degrade(samples, f"attack_samples:{variant}")

    def attack_samples_mixed_variants(self, num_samples, perturb=None):
        """Equal share of windows from every configured Spectre variant."""
        variants = self.config.spectre_variants
        per_variant = max(1, num_samples // len(variants))
        samples = []
        for variant in variants:
            samples.extend(
                self.attack_samples(per_variant, variant=variant,
                                    perturb=perturb)
            )
        return samples

    # ---- attack-efficacy check ------------------------------------------
    def verify_secret_recovery(self, variant="v1", perturb=None):
        """Run one bounded extraction and compare against the ground truth.

        Returns ``(recovered_bytes, num_correct)``.
        """
        cfg = self.config
        program = build_spectre(
            variant,
            dataclasses.replace(self._attack_config(perturb), repeats=1),
        )
        path = f"/bin/.verify_{variant}"
        self.system.install_binary(path, program)
        plan = plan_execve_injection(self.host_program, self.host_path, path)
        process = self.system.spawn(self.host_path, argv=plan.argv)
        process.run_to_completion(max_instructions=80_000_000)
        recovered = bytes(process.stdout)[:len(cfg.secret)]
        correct = sum(
            a == b for a, b in zip(recovered, cfg.secret)
        )
        return recovered, correct
