"""Core: campaign orchestration, experiment runners, reporting."""

from repro.core.reporting import (
    format_percent,
    format_series,
    format_table,
    sparkline,
)
from repro.core.scenario import (
    DEFAULT_SECRET,
    PROFILE_ITERATIONS,
    PROFILE_REPEATS,
    Scenario,
    ScenarioConfig,
)

__all__ = [
    "format_percent",
    "format_series",
    "format_table",
    "sparkline",
    "DEFAULT_SECRET",
    "PROFILE_ITERATIONS",
    "PROFILE_REPEATS",
    "Scenario",
    "ScenarioConfig",
]
