"""Core: campaign orchestration, experiment runners, reporting, resilience.

This ``__init__`` resolves its re-exports lazily (PEP 562).  The
resilience subpackage (:mod:`repro.core.resilience`) is imported by
low-level modules such as :mod:`repro.attack.calibrate`; eager imports
of :mod:`repro.core.scenario` here would close an import cycle
(scenario → attack → calibrate → core), so attribute access triggers
the heavy imports only when actually needed.
"""

_LAZY_EXPORTS = {
    "format_percent": "repro.core.reporting",
    "format_series": "repro.core.reporting",
    "format_table": "repro.core.reporting",
    "format_cell_status": "repro.core.reporting",
    "sparkline": "repro.core.reporting",
    "DEFAULT_SECRET": "repro.core.scenario",
    "PROFILE_ITERATIONS": "repro.core.scenario",
    "PROFILE_REPEATS": "repro.core.scenario",
    "Scenario": "repro.core.scenario",
    "ScenarioConfig": "repro.core.scenario",
    "FaultInjector": "repro.core.resilience",
    "FAULT_KINDS": "repro.core.resilience",
    "RetryPolicy": "repro.core.resilience",
    "Retrier": "repro.core.resilience",
    "VirtualClock": "repro.core.resilience",
    "with_retry": "repro.core.resilience",
    "Watchdog": "repro.core.resilience",
    "CheckpointStore": "repro.core.resilience",
    "run_cell": "repro.core.resilience",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
