"""Resilience layer: fault injection, watchdogs, retry, checkpoints.

Everything an experiment or attack sweep needs to tolerate transient
failure: a seeded :class:`FaultInjector` to provoke the failure modes, a
:class:`Watchdog` instruction budget so nothing hangs, seeded
:func:`with_retry` backoff for flaky calibration/covert reads, and an
atomic :class:`CheckpointStore` so killed sweeps resume instead of
starting over.  See ``docs/ROBUSTNESS.md``.
"""

from repro.core.resilience.checkpoint import (
    CELL_CACHED,
    CELL_FAILED,
    CELL_OK,
    RECOVERABLE,
    CheckpointStore,
    error_chain,
    run_cell,
    sweep_partial,
)
from repro.core.resilience.faults import (
    FAULT_KINDS,
    RUNAWAY_SOURCE,
    FaultEvent,
    FaultInjector,
)
from repro.core.resilience.retry import (
    Retrier,
    RetryAttempt,
    RetryPolicy,
    VirtualClock,
    with_retry,
)
from repro.core.resilience.watchdog import Watchdog

__all__ = [
    "CELL_CACHED",
    "CELL_FAILED",
    "CELL_OK",
    "RECOVERABLE",
    "CheckpointStore",
    "error_chain",
    "run_cell",
    "sweep_partial",
    "FAULT_KINDS",
    "RUNAWAY_SOURCE",
    "FaultEvent",
    "FaultInjector",
    "Retrier",
    "RetryAttempt",
    "RetryPolicy",
    "VirtualClock",
    "with_retry",
    "Watchdog",
]
