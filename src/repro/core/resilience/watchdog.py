"""Instruction-budget watchdog for simulator run loops.

An injected ROP chain that loops forever, or an adaptive mutation that
never converges, must raise a typed error instead of hanging the sweep.
The watchdog is duck-typed on purpose: :mod:`repro.cpu.cpu`,
:mod:`repro.kernel` and the experiment helpers only call ``charge``,
so the low layers never import this (higher-layer) module.
"""

from repro.errors import BudgetExceededError
from repro.obs.tracer import current_tracer


class Watchdog:
    """A cumulative instruction budget shared across run loops.

    Attach one instance to a :class:`~repro.cpu.cpu.Cpu` (``cpu.watchdog``)
    or pass it to ``Scheduler.run`` / ``Process.run_to_completion`` /
    ``co_run``; every loop charges the instructions it retires, and the
    first charge past the budget raises :class:`BudgetExceededError`.
    """

    def __init__(self, budget, label="run"):
        if budget <= 0:
            raise ValueError("watchdog budget must be positive")
        self.budget = int(budget)
        self.label = label
        self.consumed = 0
        self.trips = 0

    @property
    def remaining(self):
        return max(self.budget - self.consumed, 0)

    @property
    def exhausted(self):
        return self.consumed > self.budget

    def charge(self, instructions):
        """Account for *instructions*; raise once the budget is blown."""
        if instructions:
            self.consumed += int(instructions)
        if self.consumed > self.budget:
            self.trips += 1
            current_tracer().event(
                "kernel.watchdog_trip", "kernel", label=self.label,
                consumed=self.consumed, budget=self.budget,
            )
            raise BudgetExceededError(
                "instruction budget exhausted",
                consumed=self.consumed,
                budget=self.budget,
                label=self.label,
            )

    def reset(self):
        """Re-arm for a fresh run (keeps ``trips`` as telemetry)."""
        self.consumed = 0

    def __repr__(self):
        return (
            f"Watchdog(budget={self.budget}, consumed={self.consumed}, "
            f"label={self.label!r})"
        )
