"""Seeded retry with exponential backoff and jitter — no wall clock.

The simulator is deterministic, so its retry layer must be too: delays
are charged to a :class:`VirtualClock` (simulated seconds) instead of
``time.sleep``, and the jitter draws from a seeded RNG.  Two runs with
the same seed produce identical attempt sequences, delays and telemetry.
"""

import dataclasses
import functools
import random

from repro.errors import RetryExhaustedError, TransientError


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``base_delay * multiplier**(attempt-1)`` ±jitter."""

    max_attempts: int = 4
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.25
    seed: int = 0

    def delay_for(self, attempt, rng):
        """Backoff delay after failed attempt number *attempt* (1-based)."""
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class VirtualClock:
    """Accumulates simulated sleep; keeps retries wall-clock free."""

    def __init__(self):
        self.elapsed = 0.0
        self.sleeps = 0

    def sleep(self, seconds):
        self.elapsed += seconds
        self.sleeps += 1


@dataclasses.dataclass(frozen=True)
class RetryAttempt:
    """Telemetry for one attempt of one retried call."""

    call: int
    attempt: int
    outcome: str            # "ok" or "error"
    error: str = ""
    backoff: float = 0.0    # simulated seconds slept *after* this attempt


class Retrier:
    """Executes callables under a :class:`RetryPolicy`.

    Only :class:`TransientError` subclasses are retried (configurable via
    ``retry_on``); fatal errors propagate untouched.  When the budget of
    attempts runs out, raises :class:`RetryExhaustedError` with the last
    transient error chained as ``__cause__``.
    """

    def __init__(self, policy=None, clock=None, retry_on=(TransientError,)):
        self.policy = policy or RetryPolicy()
        self.clock = clock or VirtualClock()
        self.retry_on = retry_on
        self.rng = random.Random(self.policy.seed)
        self.telemetry = []
        self.calls = 0

    def call(self, fn, *args, **kwargs):
        self.calls += 1
        policy = self.policy
        for attempt in range(1, policy.max_attempts + 1):
            try:
                result = fn(*args, **kwargs)
            except self.retry_on as exc:
                if attempt >= policy.max_attempts:
                    self.telemetry.append(RetryAttempt(
                        call=self.calls, attempt=attempt,
                        outcome="error", error=repr(exc),
                    ))
                    raise RetryExhaustedError(
                        f"{getattr(fn, '__name__', fn)!s} kept failing",
                        attempts=attempt,
                    ) from exc
                backoff = policy.delay_for(attempt, self.rng)
                self.telemetry.append(RetryAttempt(
                    call=self.calls, attempt=attempt,
                    outcome="error", error=repr(exc), backoff=backoff,
                ))
                self.clock.sleep(backoff)
            else:
                self.telemetry.append(RetryAttempt(
                    call=self.calls, attempt=attempt, outcome="ok",
                ))
                return result

    def last_call_attempts(self):
        """Telemetry rows belonging to the most recent ``call``."""
        return [t for t in self.telemetry if t.call == self.calls]


def with_retry(policy=None, clock=None, retry_on=(TransientError,)):
    """Decorator form; the wrapper exposes its ``Retrier`` as ``retrier``.

    >>> @with_retry(RetryPolicy(max_attempts=3, seed=7))
    ... def read_channel(): ...
    >>> read_channel.retrier.telemetry   # per-attempt records
    """

    def decorate(fn):
        retrier = Retrier(policy=policy, clock=clock, retry_on=retry_on)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return retrier.call(fn, *args, **kwargs)

        wrapper.retrier = retrier
        return wrapper

    return decorate
