"""Deterministic fault injection for experiments and attack sweeps.

Every failure mode the resilience layer defends against can be provoked
on demand, from a seed, so degradation paths are exercisable in tests
and in the CI smoke run:

``cache_corruption``
    Probe/cache lines lose their residency (modelled as cache flushes and
    garbled calibration hit timings) — the covert channel goes noisy.
``hpc_drop``
    The profiler loses sample windows (PAPI overrun) — whole batches can
    vanish, raising :class:`SampleCorruptionError` when nothing survives.
``hpc_garble``
    Sample windows survive but some event counts are scrambled.
``miscalibration``
    The covert-channel threshold calibration returns inseparable hit and
    miss latency populations — :class:`CalibrationError` upstream.
``classifier_divergence``
    A detector's training draw fails to converge —
    :class:`ClassifierConvergenceError`.
``runaway_speculation``
    A run loop (e.g. an injected ROP chain) never terminates — the
    watchdog's :class:`~repro.errors.BudgetExceededError` is the only
    way out.

The distributed tier registers its own chaos kinds (consulted by the
``repro chaos`` harness and the worker-side transport, never by cell
bodies): ``worker_kill`` (SIGKILL a worker mid-batch),
``heartbeat_delay`` (stretch heartbeats past the lease timeout),
``frame_drop`` / ``frame_corrupt`` (swallow or bit-flip protocol
frames), and ``partition`` (SIGSTOP the job server).  Routing them
through this injector is what makes chaos runs reproducible from a
seed — see docs/DISTRIBUTED.md.
"""

import dataclasses
import random

from repro.errors import (
    ClassifierConvergenceError,
    SampleCorruptionError,
)

#: Every fault kind the injector understands, in taxonomy order.
FAULT_KINDS = (
    "cache_corruption",
    "hpc_drop",
    "hpc_garble",
    "miscalibration",
    "classifier_divergence",
    "runaway_speculation",
    # Distributed-tier chaos kinds (repro chaos / worker transport).
    "worker_kill",
    "heartbeat_delay",
    "frame_drop",
    "frame_corrupt",
    "partition",
)

#: Assembly image that never halts: what a runaway injected chain or a
#: non-converging adaptive mutation looks like to the watchdog.
RUNAWAY_SOURCE = """
.text
main:
    li   t0, 0
runaway_spin:
    addi t0, t0, 1
    jmp  runaway_spin
"""


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One consultation of the injector: did *kind* fire at *context*?"""

    kind: str
    context: str
    fired: bool


class FaultInjector:
    """Seeded, rate-driven fault source.

    ``rates`` maps fault kind → per-consultation firing probability
    (1.0 = always).  ``max_fires`` optionally caps how often each kind
    fires — e.g. ``max_fires=2`` lets a retry loop succeed on its third
    attempt, which is how the smoke run proves backoff works.
    """

    def __init__(self, seed=0, rates=None, max_fires=None):
        rates = dict(rates or {})
        unknown = set(rates) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kinds: {sorted(unknown)}; "
                f"choose from {FAULT_KINDS}"
            )
        self.seed = seed
        self.rates = rates
        self.max_fires = max_fires
        self._rng = random.Random(seed)
        self.fired = {kind: 0 for kind in FAULT_KINDS}
        self.log = []

    # ---- derivation (parallel sweeps) -----------------------------------
    def derive(self, seed):
        """A fresh injector with this one's rates/caps and a new seed.

        Parallel sweeps give every cell its own derived injector (seeded
        from the cell key, see ``repro.exec.seeds``) so fault streams do
        not depend on execution order or worker assignment.  ``max_fires``
        therefore caps fires *per cell* in a planned sweep, not per run.
        """
        return FaultInjector(
            seed=seed, rates=self.rates, max_fires=self.max_fires
        )

    def absorb(self, fired):
        """Fold a derived injector's fired counts into this telemetry."""
        for kind, count in fired.items():
            self.fired[kind] = self.fired.get(kind, 0) + count

    # ---- firing decisions ------------------------------------------------
    def armed(self, kind):
        return self.rates.get(kind, 0.0) > 0.0

    def _cap_for(self, kind):
        if self.max_fires is None:
            return None
        if isinstance(self.max_fires, dict):
            return self.max_fires.get(kind)
        return self.max_fires

    def should_fire(self, kind, context=""):
        """Draw once; record the consultation in ``log`` either way."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        rate = self.rates.get(kind, 0.0)
        cap = self._cap_for(kind)
        if cap is not None and self.fired[kind] >= cap:
            fired = False
        else:
            fired = rate > 0.0 and self._rng.random() < rate
        if fired:
            self.fired[kind] += 1
        self.log.append(FaultEvent(kind=kind, context=context, fired=fired))
        return fired

    # ---- application helpers --------------------------------------------
    def filter_samples(self, samples, context="sampling"):
        """Apply ``hpc_drop``/``hpc_garble`` to a batch of profiler samples.

        Returns the (possibly degraded) batch; raises
        :class:`SampleCorruptionError` when a non-empty batch loses every
        window — the sweep cell can then fail typed instead of training a
        detector on nothing.
        """
        if not samples or not (self.armed("hpc_drop")
                               or self.armed("hpc_garble")):
            return samples
        out = []
        for sample in samples:
            if self.should_fire("hpc_drop", context):
                continue
            if self.should_fire("hpc_garble", context):
                sample = self._garble(sample)
            out.append(sample)
        if samples and not out:
            raise SampleCorruptionError(
                f"{context}: all {len(samples)} HPC windows dropped "
                f"by injected faults"
            )
        return out

    def _garble(self, sample):
        """Scramble a few event counters of one window (overrun noise)."""
        events = dict(sample.events)
        names = sorted(events)
        for _ in range(max(1, len(names) // 8)):
            name = self._rng.choice(names)
            events[name] = events.get(name, 0.0) * self._rng.uniform(
                10.0, 1000.0
            )
        return dataclasses.replace(sample, events=events)

    def corrupt_calibration(self, calibration):
        """Model corrupted probe lines / a mis-set threshold.

        Returns a calibration whose hit and miss populations overlap, so
        ``separable`` is False and the caller raises
        :class:`~repro.errors.CalibrationError`.
        """
        hits = list(calibration.hit_latencies)
        misses = list(calibration.miss_latencies)
        # Collapse the gap: slowest "miss" now undercuts the fastest hit.
        floor = min(hits) - 1 if hits else 0
        for index in range(0, len(misses), 2):
            misses[index] = max(1, floor)
        return dataclasses.replace(
            calibration,
            hit_latencies=tuple(hits),
            miss_latencies=tuple(misses),
        )

    def corrupt_cache(self, caches, context="cache"):
        """Invalidate live cache state (the residency-loss degradation)."""
        if self.should_fire("cache_corruption", context):
            caches.flush_all()
            return True
        return False

    def check_convergence(self, name, context="fit"):
        """Raise :class:`ClassifierConvergenceError` when the kind fires."""
        if self.should_fire("classifier_divergence", f"{context}:{name}"):
            raise ClassifierConvergenceError(
                f"injected fault: detector {name!r} failed to converge"
            )

    def runaway_fired(self, context="run"):
        """True when this run should be replaced by a non-halting image."""
        return self.should_fire("runaway_speculation", context)

    def summary(self):
        """Fired counts per kind, for reports and telemetry."""
        return {k: v for k, v in self.fired.items() if v}
