"""Checkpoint/resume for experiment sweeps.

A sweep is a set of named *cells* (e.g. one per workload × attack ×
classifier).  Each completed cell is persisted atomically (temp file +
``os.replace``), so a killed run loses at most the cell in flight, and a
re-run skips every completed cell.

The store is one JSON file::

    {"meta": {...}, "cells": {"fig6/spectre": {...}, ...}}

``meta`` binds the checkpoint to its sweep configuration (experiment
name, seed, scale knobs); resuming with different meta discards the
stale cells rather than silently mixing two configurations.

Parallel sweeps (``repro.exec``) additionally persist each completed
cell as its own *shard* file under ``<path>.d/`` — an O_EXCL-created,
atomically-linked JSON file per cell.  Shards make concurrent
checkpointing safe without a lock: two writers racing on the same cell
resolve to first-writer-wins (both computed the same deterministic
value), and a parallel run killed mid-sweep resumes exactly like a
serial one because :meth:`CheckpointStore._load` merges shards back in
(*merge-on-read*).  :meth:`CheckpointStore.consolidate` folds surviving
shards into the monolithic file at the end of a sweep, so the final
on-disk artefact is byte-identical to what a serial run leaves behind.
"""

import hashlib
import json
import os
import tempfile

from repro.atomicio import atomic_write_json
from repro.errors import (
    BudgetExceededError,
    CheckpointError,
    RetryExhaustedError,
    TransientError,
)

#: Cell statuses a sweep report can carry.
CELL_OK = "ok"
CELL_CACHED = "cached"      # loaded from a previous run's checkpoint
CELL_FAILED = "failed"      # typed, recoverable failure; sweep went on


class CheckpointStore:
    """One sweep's cell cache, persisted atomically after every put."""

    def __init__(self, path, meta=None):
        self.path = os.fspath(path)
        self.meta = dict(meta or {})
        self.discarded = False
        self._cells = {}
        self._load()

    @property
    def shard_dir(self):
        return self.path + ".d"

    def _load(self):
        stored_meta = None
        if os.path.exists(self.path):
            try:
                with open(self.path, encoding="utf-8") as handle:
                    payload = json.load(handle)
                cells = payload["cells"]
                stored_meta = payload.get("meta", {})
            except (OSError, ValueError, KeyError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint {self.path!r}: {exc}"
                ) from exc
            if self.meta and stored_meta != self.meta:
                # A different sweep configuration wrote this file: its
                # cells would be wrong answers here.  Start fresh.
                self.discarded = True
            else:
                self._cells = dict(cells)
        self._merge_shards()

    def _meta_fingerprint(self):
        """Stable digest binding shard files to this sweep configuration."""
        material = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        return hashlib.sha256(material).hexdigest()[:16]

    def _shard_path(self, key):
        key_digest = hashlib.sha256(
            str(key).encode("utf-8")
        ).hexdigest()[:16]
        return os.path.join(
            self.shard_dir, f"{self._meta_fingerprint()}-{key_digest}.json"
        )

    def _merge_shards(self):
        """Fold per-cell shard files into the in-memory cell map.

        Only shards whose filename carries this store's meta fingerprint
        are read — a stale shard from a differently-configured sweep can
        never leak cells in (the monolith's discard rule, per shard).
        Unreadable shards are ignored: shards are only ever *created*
        atomically, so a bad one is a foreign file, not a torn write.
        """
        if not os.path.isdir(self.shard_dir):
            return
        prefix = self._meta_fingerprint() + "-"
        for name in sorted(os.listdir(self.shard_dir)):
            if not (name.startswith(prefix) and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(self.shard_dir, name),
                          encoding="utf-8") as handle:
                    shard = json.load(handle)
                key, value = shard["key"], shard["value"]
            except (OSError, ValueError, KeyError):
                continue
            self._cells.setdefault(str(key), value)

    def _flush(self):
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        atomic_write_json(
            self.path, {"meta": self.meta, "cells": self._cells}
        )

    def __contains__(self, key):
        return str(key) in self._cells

    def __len__(self):
        return len(self._cells)

    def keys(self):
        return sorted(self._cells)

    def get(self, key):
        try:
            return self._cells[str(key)]
        except KeyError:
            raise CheckpointError(
                f"checkpoint {self.path!r} has no cell {key!r}"
            ) from None

    def put(self, key, value):
        """Record a completed cell and persist the store atomically."""
        try:
            json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"cell {key!r} value is not JSON-serialisable: {exc}"
            ) from exc
        self._cells[str(key)] = value
        self._flush()

    def put_shard(self, key, value):
        """Record a completed cell as its own shard file (no monolith I/O).

        The shard is written to a temp file and *linked* into place —
        ``os.link`` fails with ``EEXIST`` when the shard already exists
        (O_EXCL semantics), which is exactly right: a concurrent writer
        completed the same deterministic cell first, so this value is a
        duplicate and is dropped.  Returns True when this call created
        the shard.  Used by parallel backends: per-cell O(1) writes
        instead of rewriting an O(cells) monolith under contention.
        """
        key = str(key)
        try:
            data = json.dumps({"key": key, "value": value})
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"cell {key!r} value is not JSON-serialisable: {exc}"
            ) from exc
        os.makedirs(self.shard_dir, exist_ok=True)
        final = self._shard_path(key)
        fd, tmp_path = tempfile.mkstemp(dir=self.shard_dir, suffix=".tmp")
        created = False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            try:
                os.link(tmp_path, final)
                created = True
            except FileExistsError:
                pass
        finally:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        self._cells[key] = value
        return created

    def consolidate(self):
        """Fold shards into the monolithic file and delete the shard dir.

        Called at the end of a parallel sweep so the surviving artefact
        is the same single JSON file a serial sweep leaves behind.
        """
        self._flush()
        if not os.path.isdir(self.shard_dir):
            return
        for name in os.listdir(self.shard_dir):
            try:
                os.unlink(os.path.join(self.shard_dir, name))
            except OSError:
                pass
        try:
            os.rmdir(self.shard_dir)
        except OSError:
            pass

    def clear(self):
        self._cells = {}
        self._flush()


#: Error classes a sweep cell may absorb into a partial report; anything
#: else (programming errors, fatal configuration errors) propagates.
RECOVERABLE = (TransientError, RetryExhaustedError, BudgetExceededError)


def error_chain(exc):
    """Render an exception's ``__cause__`` chain as one status string."""
    chain = []
    cursor = exc
    while cursor is not None:
        chain.append(f"{type(cursor).__name__}: {cursor}")
        cursor = cursor.__cause__
    return " <- ".join(chain)


def run_cell(key, compute, store=None, statuses=None):
    """Run one sweep cell with checkpoint + graceful-degradation semantics.

    * completed in a previous run → return the cached value (``cached``);
    * ``compute()`` succeeds → persist (when *store* given) and return it;
    * ``compute()`` raises a recoverable error → record ``failed`` with
      the error chain and return ``None`` so the sweep continues.

    ``statuses`` (dict) receives ``key -> {"status": ..., "error": ...}``.
    """
    key = str(key)
    if statuses is None:
        statuses = {}
    if store is not None and key in store:
        statuses[key] = {"status": CELL_CACHED}
        return store.get(key)
    try:
        value = compute()
    except RECOVERABLE as exc:
        statuses[key] = {"status": CELL_FAILED, "error": error_chain(exc)}
        return None
    if store is not None:
        store.put(key, value)
    statuses[key] = {"status": CELL_OK}
    return value


def sweep_partial(statuses):
    """True when any cell of the sweep failed."""
    return any(
        cell.get("status") == CELL_FAILED for cell in statuses.values()
    )
