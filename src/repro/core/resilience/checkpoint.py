"""Checkpoint/resume for experiment sweeps.

A sweep is a set of named *cells* (e.g. one per workload × attack ×
classifier).  Each completed cell is persisted atomically (temp file +
``os.replace``), so a killed run loses at most the cell in flight, and a
re-run skips every completed cell.

The store is one JSON file::

    {"meta": {...}, "cells": {"fig6/spectre": {...}, ...}}

``meta`` binds the checkpoint to its sweep configuration (experiment
name, seed, scale knobs); resuming with different meta discards the
stale cells rather than silently mixing two configurations.
"""

import json
import os

from repro.atomicio import atomic_write_json
from repro.errors import (
    BudgetExceededError,
    CheckpointError,
    RetryExhaustedError,
    TransientError,
)

#: Cell statuses a sweep report can carry.
CELL_OK = "ok"
CELL_CACHED = "cached"      # loaded from a previous run's checkpoint
CELL_FAILED = "failed"      # typed, recoverable failure; sweep went on


class CheckpointStore:
    """One sweep's cell cache, persisted atomically after every put."""

    def __init__(self, path, meta=None):
        self.path = os.fspath(path)
        self.meta = dict(meta or {})
        self.discarded = False
        self._cells = {}
        self._load()

    def _load(self):
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, encoding="utf-8") as handle:
                payload = json.load(handle)
            cells = payload["cells"]
            stored_meta = payload.get("meta", {})
        except (OSError, ValueError, KeyError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {self.path!r}: {exc}"
            ) from exc
        if self.meta and stored_meta != self.meta:
            # A different sweep configuration wrote this file: its cells
            # would be wrong answers here.  Start fresh.
            self.discarded = True
            return
        self._cells = dict(cells)

    def _flush(self):
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        atomic_write_json(
            self.path, {"meta": self.meta, "cells": self._cells}
        )

    def __contains__(self, key):
        return str(key) in self._cells

    def __len__(self):
        return len(self._cells)

    def keys(self):
        return sorted(self._cells)

    def get(self, key):
        try:
            return self._cells[str(key)]
        except KeyError:
            raise CheckpointError(
                f"checkpoint {self.path!r} has no cell {key!r}"
            ) from None

    def put(self, key, value):
        """Record a completed cell and persist the store atomically."""
        try:
            json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"cell {key!r} value is not JSON-serialisable: {exc}"
            ) from exc
        self._cells[str(key)] = value
        self._flush()

    def clear(self):
        self._cells = {}
        self._flush()


#: Error classes a sweep cell may absorb into a partial report; anything
#: else (programming errors, fatal configuration errors) propagates.
RECOVERABLE = (TransientError, RetryExhaustedError, BudgetExceededError)


def run_cell(key, compute, store=None, statuses=None):
    """Run one sweep cell with checkpoint + graceful-degradation semantics.

    * completed in a previous run → return the cached value (``cached``);
    * ``compute()`` succeeds → persist (when *store* given) and return it;
    * ``compute()`` raises a recoverable error → record ``failed`` with
      the error chain and return ``None`` so the sweep continues.

    ``statuses`` (dict) receives ``key -> {"status": ..., "error": ...}``.
    """
    key = str(key)
    if statuses is None:
        statuses = {}
    if store is not None and key in store:
        statuses[key] = {"status": CELL_CACHED}
        return store.get(key)
    try:
        value = compute()
    except RECOVERABLE as exc:
        chain = []
        cursor = exc
        while cursor is not None:
            chain.append(f"{type(cursor).__name__}: {cursor}")
            cursor = cursor.__cause__
        statuses[key] = {"status": CELL_FAILED, "error": " <- ".join(chain)}
        return None
    if store is not None:
        store.put(key, value)
    statuses[key] = {"status": CELL_OK}
    return value


def sweep_partial(statuses):
    """True when any cell of the sweep failed."""
    return any(
        cell.get("status") == CELL_FAILED for cell in statuses.values()
    )
