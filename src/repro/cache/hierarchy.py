"""Three-level cache hierarchy (L1I + L1D, unified L2) with latencies.

Latencies are the heart of the covert channel: the attacker's
``rdcycle``-timed reloads distinguish an L1/L2 hit (a few cycles) from a
DRAM access (~two hundred cycles), recovering the secret byte that a
squashed speculative load left behind as a cache fill.
"""

import dataclasses

from repro.cache.cache import Cache, CacheStats


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry + timing knobs for a :class:`CacheHierarchy`."""

    line_size: int = 64
    l1d_size: int = 32 * 1024
    l1d_ways: int = 8
    l1i_size: int = 32 * 1024
    l1i_ways: int = 8
    l2_size: int = 256 * 1024
    l2_ways: int = 8
    policy: str = "lru"
    l1_latency: int = 2
    l2_latency: int = 12
    memory_latency: int = 180


@dataclasses.dataclass
class AccessResult:
    """Outcome of one data/instruction access."""

    latency: int
    l1_hit: bool
    l2_hit: bool

    @property
    def hit(self):
        return self.l1_hit or self.l2_hit

    @property
    def memory_access(self):
        return not self.hit


class CacheHierarchy:
    """L1I/L1D backed by a unified L2, backed by fixed-latency memory.

    ``shared_l2`` lets several hierarchies (one per core/process) share
    one physical L2 — the contention that makes a co-located CR-Spectre
    measurably slow the host down (Table I).  Each hierarchy keeps its
    *own* L2 access/hit/miss counters so per-process PMU attribution
    stays correct even when the array is shared.
    """

    def __init__(self, config=None, shared_l2=None, asid=0):
        self.config = config or CacheConfig()
        cfg = self.config
        self.l1d = Cache("L1D", cfg.l1d_size, cfg.line_size, cfg.l1d_ways,
                         cfg.policy)
        self.l1i = Cache("L1I", cfg.l1i_size, cfg.line_size, cfg.l1i_ways,
                         cfg.policy)
        self.l2 = shared_l2 or Cache("L2", cfg.l2_size, cfg.line_size,
                                     cfg.l2_ways, cfg.policy)
        self.l2_shared = shared_l2 is not None
        #: Address-space tag: distinct processes use identical virtual
        #: addresses, so shared-L2 lookups are disambiguated by ASID
        #: (folded into the tag bits, leaving set selection untouched).
        #: Otherwise one process's fills would falsely hit for another.
        self._asid_tag = (asid & 0xFF) << 32
        #: local attribution of this hierarchy's L2 traffic
        self.l2_stats = CacheStats()
        self.memory_reads = 0
        self.memory_writes = 0
        #: precomputed per-level latency sums for the fast accessors
        self._latencies = (
            cfg.l1_latency,
            cfg.l1_latency + cfg.l2_latency,
            cfg.l1_latency + cfg.l2_latency + cfg.memory_latency,
        )
        #: trace channel (see repro.obs); None keeps every path free of
        #: tracing work except a single check on the full-miss branches.
        self._trace = None

    def bind_tracer(self, channel):
        """Attach one cache trace channel to this hierarchy's levels.

        A shared L2 ends up bound to the channel of the last hierarchy
        constructed around it — spawn order is deterministic, so the
        trace is too.
        """
        self._trace = channel
        self.l1d._trace = channel
        self.l1i._trace = channel
        self.l2._trace = channel

    def _l2_access(self, address, is_write):
        hit, _ = self.l2.access(address | self._asid_tag, is_write)
        stats = self.l2_stats
        stats.accesses += 1
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1
            if is_write:
                stats.write_misses += 1
            else:
                stats.read_misses += 1
        return hit

    # ---- accesses ------------------------------------------------------
    #
    # The ``*_fast`` variants are the hot path: they return a bare
    # ``(latency, level)`` tuple (level 1 = L1 hit, 2 = L2 hit,
    # 3 = memory) instead of allocating an :class:`AccessResult`.  The
    # public methods wrap them so every existing caller keeps its
    # dataclass API; the interpreter loop calls the fast variants
    # directly.
    def data_access_fast(self, address, is_write=False):
        """Data-path access; returns ``(latency, level)``."""
        latencies = self._latencies
        l1_hit, _ = self.l1d.access(address, is_write)
        if l1_hit:
            return latencies[0], 1
        if self._l2_access(address, is_write):
            return latencies[1], 2
        if is_write:
            self.memory_writes += 1
        else:
            self.memory_reads += 1
        if self._trace is not None:
            self._trace.event("cache.miss", line=self.l2.line_address(address),
                              path="d", write=is_write)
        return latencies[2], 3

    def instruction_access_fast(self, address):
        """Instruction-path access; returns ``(latency, level)``."""
        latencies = self._latencies
        l1_hit, _ = self.l1i.access(address)
        if l1_hit:
            return latencies[0], 1
        if self._l2_access(address, False):
            return latencies[1], 2
        self.memory_reads += 1
        if self._trace is not None:
            self._trace.event("cache.miss", line=self.l2.line_address(address),
                              path="i", write=False)
        return latencies[2], 3

    def data_access(self, address, is_write=False):
        """Access the data path; returns an :class:`AccessResult`."""
        latency, level = self.data_access_fast(address, is_write)
        return AccessResult(latency, level == 1, level == 2)

    def instruction_access(self, address):
        """Access the instruction path; returns an :class:`AccessResult`."""
        latency, level = self.instruction_access_fast(address)
        return AccessResult(latency, level == 1, level == 2)

    def flush_line(self, address):
        """``clflush``: evict the line from every level.

        Returns True if the line was present anywhere.
        """
        present = self.l1d.invalidate(address)
        present |= self.l1i.invalidate(address)
        present |= self.l2.invalidate(address | self._asid_tag)
        return present

    def flush_all(self):
        self.l1d.flush_all()
        self.l1i.flush_all()
        self.l2.flush_all()

    def probe_data(self, address):
        """Presence check without side effects (test/diagnostic helper)."""
        return self.l1d.probe(address) or self.l2.probe(
            address | self._asid_tag
        )

    @property
    def line_size(self):
        return self.config.line_size
