"""Cache models: replacement policies, set-associative cache, hierarchy."""

from repro.cache.cache import Cache, CacheStats
from repro.cache.hierarchy import AccessResult, CacheConfig, CacheHierarchy
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    POLICIES,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "Cache",
    "CacheStats",
    "AccessResult",
    "CacheConfig",
    "CacheHierarchy",
    "FifoPolicy",
    "LruPolicy",
    "POLICIES",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
]
