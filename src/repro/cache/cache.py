"""A set-associative cache model (tags only, no data payload).

Only the *presence* of lines matters for both timing and the Spectre
covert channel, so the model stores tags and dirty bits but not data.
``clflush`` (line invalidation from user code) and persistent fills from
squashed speculative loads — the two mechanisms CR-Spectre lives on — are
first-class operations.

Hot-path layout
---------------
``access`` is the single hottest call in the whole simulator (every
fetch, load and store funnels through it), so each set keeps a
``tag → way`` dict alongside the per-way tag list: a hit is one dict
lookup instead of a linear way scan.  For the default LRU policy the
per-set replacement state (clock + stamps) is inlined here as plain
lists — semantically identical to :class:`~repro.cache.replacement.
LruPolicy`, just without a method call per access.  Non-LRU policies
keep their policy objects and take the slow path.
"""

import dataclasses

from repro.cache.replacement import make_policy


@dataclasses.dataclass
class CacheStats:
    """Counters one cache instance accumulates over its lifetime."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_accesses: int = 0
    read_misses: int = 0
    write_accesses: int = 0
    write_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    flushes: int = 0

    def snapshot(self):
        return dataclasses.replace(self)


class Cache:
    """One level of a set-associative cache."""

    def __init__(self, name, size, line_size=64, ways=8, policy="lru"):
        if size % (line_size * ways):
            raise ValueError(
                f"{name}: size {size} not divisible by line_size*ways"
            )
        self.name = name
        self.size = size
        self.line_size = line_size
        self.ways = ways
        self.num_sets = size // (line_size * ways)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self._set_mask = self.num_sets - 1
        self._line_shift = line_size.bit_length() - 1
        if 1 << self._line_shift != line_size:
            raise ValueError(f"{name}: line size must be a power of two")
        self._index_shift = self.num_sets.bit_length() - 1
        self.policy_name = policy
        self._tags = [[None] * ways for _ in range(self.num_sets)]
        self._dirty = [[False] * ways for _ in range(self.num_sets)]
        #: per-set ``tag -> way`` index; the source of truth stays
        #: ``_tags`` (eviction-address reconstruction, occupancy), the
        #: maps are kept exactly in sync by access/invalidate/flush_all.
        self._maps = [{} for _ in range(self.num_sets)]
        self._lru = policy == "lru"
        if self._lru:
            # Inlined LruPolicy state: one clock and one stamp list per
            # set.  flush_all leaves both alone, matching the policy
            # objects (which a flush never resets either).
            self._clocks = [0] * self.num_sets
            self._stamps = [[0] * ways for _ in range(self.num_sets)]
            self._policies = None
        else:
            self._policies = [
                make_policy(policy, ways) for _ in range(self.num_sets)
            ]
        self.stats = CacheStats()
        #: trace channel, bound by CacheHierarchy.bind_tracer; the hit
        #: path never consults it — only evictions and invalidations do.
        self._trace = None

    # ---- address helpers ----------------------------------------------
    def line_address(self, address):
        """The address with line-offset bits cleared."""
        return address >> self._line_shift << self._line_shift

    def _index_tag(self, address):
        line = address >> self._line_shift
        return line & self._set_mask, line >> self._index_shift

    def inline_state(self):
        """The hit-path state an external translator may bind directly.

        The superblock engine compiles the :meth:`access` hit arm into
        generated code, so it needs the same per-set structures this
        class mutates.  Handing them out through one accessor keeps the
        contract explicit: the dict values are the **live** objects
        (mutated in place, never replaced — ``flush_all`` and
        ``invalidate`` edit the maps they return), and a caller
        replicating the hit path must bump the set clock, stamp the way,
        mark dirty on writes and count hits exactly like :meth:`access`.

        Returns ``None`` when the hit path cannot be inlined: a non-LRU
        replacement policy (policy objects carry their own state) or a
        bound trace channel (eviction/invalidation events must observe
        every access through the slow path).
        """
        if not self._lru or self._trace is not None:
            return None
        return {
            "line_shift": self._line_shift,
            "set_mask": self._set_mask,
            "index_shift": self._index_shift,
            "maps": self._maps,
            "clocks": self._clocks,
            "stamps": self._stamps,
            "dirty": self._dirty,
            "stats": self.stats,
        }

    # ---- operations ----------------------------------------------------
    def access(self, address, is_write=False):
        """Look up *address*; fill on miss.

        Returns ``(hit, evicted_line_address_or_none)``.  The evicted line
        address lets the hierarchy model writebacks / back-invalidations.
        """
        line = address >> self._line_shift
        index = line & self._set_mask
        tag = line >> self._index_shift
        cmap = self._maps[index]
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.write_accesses += 1
        else:
            stats.read_accesses += 1

        way = cmap.get(tag)
        if way is not None:
            if self._lru:
                clock = self._clocks[index] + 1
                self._clocks[index] = clock
                self._stamps[index][way] = clock
            else:
                self._policies[index].on_access(way)
            if is_write:
                self._dirty[index][way] = True
            stats.hits += 1
            return True, None

        stats.misses += 1
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1

        tags = self._tags[index]
        if self._lru:
            # Victim selection, verbatim LruPolicy semantics: first
            # invalid way, else the lowest stamp (first index on ties).
            way = None
            for candidate in range(self.ways):
                if tags[candidate] is None:
                    way = candidate
                    break
            if way is None:
                stamps = self._stamps[index]
                way = 0
                best = stamps[0]
                for candidate in range(1, self.ways):
                    if stamps[candidate] < best:
                        best = stamps[candidate]
                        way = candidate
        else:
            valid = [t is not None for t in tags]
            way = self._policies[index].victim(valid)
        evicted = None
        old_tag = tags[way]
        if old_tag is not None:
            stats.evictions += 1
            if self._dirty[index][way]:
                stats.writebacks += 1
            evicted = (old_tag * self.num_sets + index) << self._line_shift
            del cmap[old_tag]
            if self._trace is not None:
                self._trace.event("cache.evict", cache=self.name,
                                  set=index, way=way, line=evicted)
        tags[way] = tag
        cmap[tag] = way
        self._dirty[index][way] = is_write
        if self._lru:
            clock = self._clocks[index] + 1
            self._clocks[index] = clock
            self._stamps[index][way] = clock
        else:
            self._policies[index].on_access(way)
        return False, evicted

    def probe(self, address):
        """Non-destructive presence check (no fill, no stats)."""
        line = address >> self._line_shift
        return (line >> self._index_shift) in self._maps[line & self._set_mask]

    def invalidate(self, address):
        """clflush semantics: drop the line if present; True if it was."""
        index, tag = self._index_tag(address)
        self.stats.flushes += 1
        cmap = self._maps[index]
        way = cmap.get(tag)
        if way is None:
            return False
        self._tags[index][way] = None
        del cmap[tag]
        if self._dirty[index][way]:
            self.stats.writebacks += 1
            self._dirty[index][way] = False
        if self._lru:
            self._stamps[index][way] = 0
        else:
            self._policies[index].on_invalidate(way)
        if self._trace is not None:
            self._trace.event("cache.flush", cache=self.name,
                              set=index, way=way,
                              line=self.line_address(address))
        return True

    def flush_all(self):
        """Invalidate every line (context switch cost model)."""
        for index in range(self.num_sets):
            tags = self._tags[index]
            dirty = self._dirty[index]
            for way in range(self.ways):
                tags[way] = None
                dirty[way] = False
            self._maps[index].clear()

    @property
    def occupancy(self):
        """Number of valid lines currently cached."""
        return sum(len(cmap) for cmap in self._maps)

    def __repr__(self):
        return (
            f"Cache({self.name!r}, size={self.size}, "
            f"line={self.line_size}, ways={self.ways}, "
            f"policy={self.policy_name!r})"
        )
