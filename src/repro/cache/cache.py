"""A set-associative cache model (tags only, no data payload).

Only the *presence* of lines matters for both timing and the Spectre
covert channel, so the model stores tags and dirty bits but not data.
``clflush`` (line invalidation from user code) and persistent fills from
squashed speculative loads — the two mechanisms CR-Spectre lives on — are
first-class operations.
"""

import dataclasses

from repro.cache.replacement import make_policy


@dataclasses.dataclass
class CacheStats:
    """Counters one cache instance accumulates over its lifetime."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_accesses: int = 0
    read_misses: int = 0
    write_accesses: int = 0
    write_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    flushes: int = 0

    def snapshot(self):
        return dataclasses.replace(self)


class Cache:
    """One level of a set-associative cache."""

    def __init__(self, name, size, line_size=64, ways=8, policy="lru"):
        if size % (line_size * ways):
            raise ValueError(
                f"{name}: size {size} not divisible by line_size*ways"
            )
        self.name = name
        self.size = size
        self.line_size = line_size
        self.ways = ways
        self.num_sets = size // (line_size * ways)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self._set_mask = self.num_sets - 1
        self._line_shift = line_size.bit_length() - 1
        if 1 << self._line_shift != line_size:
            raise ValueError(f"{name}: line size must be a power of two")
        self.policy_name = policy
        self._tags = [[None] * ways for _ in range(self.num_sets)]
        self._dirty = [[False] * ways for _ in range(self.num_sets)]
        self._policies = [make_policy(policy, ways) for _ in range(self.num_sets)]
        self.stats = CacheStats()
        #: trace channel, bound by CacheHierarchy.bind_tracer; the hit
        #: path never consults it — only evictions and invalidations do.
        self._trace = None

    # ---- address helpers ----------------------------------------------
    def line_address(self, address):
        """The address with line-offset bits cleared."""
        return address >> self._line_shift << self._line_shift

    def _index_tag(self, address):
        line = address >> self._line_shift
        return line & self._set_mask, line >> (
            self.num_sets.bit_length() - 1
        )

    # ---- operations ----------------------------------------------------
    def access(self, address, is_write=False):
        """Look up *address*; fill on miss.

        Returns ``(hit, evicted_line_address_or_none)``.  The evicted line
        address lets the hierarchy model writebacks / back-invalidations.
        """
        index, tag = self._index_tag(address)
        tags = self._tags[index]
        policy = self._policies[index]
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.write_accesses += 1
        else:
            stats.read_accesses += 1

        for way in range(self.ways):
            if tags[way] == tag:
                policy.on_access(way)
                if is_write:
                    self._dirty[index][way] = True
                stats.hits += 1
                return True, None

        stats.misses += 1
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1

        valid = [t is not None for t in tags]
        way = policy.victim(valid)
        evicted = None
        if tags[way] is not None:
            stats.evictions += 1
            if self._dirty[index][way]:
                stats.writebacks += 1
            evicted_line = (tags[way] * self.num_sets + index) << self._line_shift
            evicted = evicted_line
            if self._trace is not None:
                self._trace.event("cache.evict", cache=self.name,
                                  set=index, way=way, line=evicted_line)
        tags[way] = tag
        self._dirty[index][way] = is_write
        policy.on_access(way)
        return False, evicted

    def probe(self, address):
        """Non-destructive presence check (no fill, no stats)."""
        index, tag = self._index_tag(address)
        return tag in self._tags[index]

    def invalidate(self, address):
        """clflush semantics: drop the line if present; True if it was."""
        index, tag = self._index_tag(address)
        tags = self._tags[index]
        self.stats.flushes += 1
        for way in range(self.ways):
            if tags[way] == tag:
                tags[way] = None
                if self._dirty[index][way]:
                    self.stats.writebacks += 1
                    self._dirty[index][way] = False
                self._policies[index].on_invalidate(way)
                if self._trace is not None:
                    self._trace.event("cache.flush", cache=self.name,
                                      set=index, way=way,
                                      line=self.line_address(address))
                return True
        return False

    def flush_all(self):
        """Invalidate every line (context switch cost model)."""
        for index in range(self.num_sets):
            for way in range(self.ways):
                self._tags[index][way] = None
                self._dirty[index][way] = False

    @property
    def occupancy(self):
        """Number of valid lines currently cached."""
        return sum(
            1
            for tags in self._tags
            for tag in tags
            if tag is not None
        )

    def __repr__(self):
        return (
            f"Cache({self.name!r}, size={self.size}, "
            f"line={self.line_size}, ways={self.ways}, "
            f"policy={self.policy_name!r})"
        )
