"""Replacement policies for set-associative caches.

Each policy manages *one* cache set and decides which way to evict.  The
policy objects are deliberately tiny — the cache calls them millions of
times per simulated run.
"""

import random


class ReplacementPolicy:
    """Interface: per-set victim selection plus access bookkeeping."""

    name = "abstract"

    def __init__(self, ways):
        self.ways = ways

    def on_access(self, way):
        """Called on every hit or fill of *way*."""

    def on_invalidate(self, way):
        """Called when *way* is invalidated (e.g. clflush)."""

    def victim(self, valid):
        """Return the way to evict; *valid* is a list of per-way validity.

        Invalid ways must be preferred (cold fill before eviction).
        """
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least-recently-used, tracked with per-way timestamps."""

    name = "lru"

    def __init__(self, ways):
        super().__init__(ways)
        self._stamps = [0] * ways
        self._clock = 0

    def on_access(self, way):
        self._clock += 1
        self._stamps[way] = self._clock

    def on_invalidate(self, way):
        self._stamps[way] = 0

    def victim(self, valid):
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        stamps = self._stamps
        victim = 0
        for way in range(1, self.ways):
            if stamps[way] < stamps[victim]:
                victim = way
        return victim


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: evict in fill order, ignore hits."""

    name = "fifo"

    def __init__(self, ways):
        super().__init__(ways)
        self._next = 0

    def victim(self, valid):
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        victim = self._next
        self._next = (self._next + 1) % self.ways
        return victim


class RandomPolicy(ReplacementPolicy):
    """Uniform random eviction (seeded for determinism)."""

    name = "random"

    def __init__(self, ways, seed=0):
        super().__init__(ways)
        self._rng = random.Random(seed)

    def victim(self, valid):
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return self._rng.randrange(self.ways)


POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name, ways):
    """Instantiate a replacement policy by name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(POLICIES)}"
        )
    return factory(ways)
