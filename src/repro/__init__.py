"""CR-Spectre reproduction: defense-aware ROP-injected dynamic Spectre.

A full-stack simulation of Dhavlle et al., "CR-Spectre: Defense-Aware
ROP Injected Code-Reuse Based Dynamic Spectre" (DATE 2022):

* a toy RISC ISA + assembler (:mod:`repro.isa`),
* a speculative CPU with caches, branch predictors, TLBs and a 56-event
  PMU (:mod:`repro.cpu`, :mod:`repro.cache`, :mod:`repro.branch`,
  :mod:`repro.mem`),
* a small OS with DEP, ASLR, ``execve`` and a scheduler
  (:mod:`repro.kernel`),
* MiBench-style workloads incl. the vulnerable host
  (:mod:`repro.workloads`),
* the attack toolchain — Spectre v1/RSB/SBO generators, ROP gadget
  scanner + chain builder, Listing-1 payloads, Algorithm-2 perturbation,
  the adaptive evasion controller (:mod:`repro.attack`),
* ML-based hardware intrusion detection (:mod:`repro.hid`), and
* the per-figure/table experiment runners (:mod:`repro.core`).

Quickstart::

    from repro import Scenario, ScenarioConfig
    scenario = Scenario(ScenarioConfig(host="basicmath"))
    recovered, correct = scenario.verify_secret_recovery()
"""

from repro.attack import (
    AdaptiveAttacker,
    PerturbParams,
    SpectreConfig,
    build_spectre,
    plan_execve_injection,
)
from repro.core import Scenario, ScenarioConfig
from repro.core.experiments import (
    run_fig4,
    run_fig5,
    run_fig6,
    run_table1,
)
from repro.errors import ReproError
from repro.hid import HidDetector, OnlineHidDetector, Profiler, make_detector
from repro.kernel import System, build_binary
from repro.workloads import get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AdaptiveAttacker",
    "PerturbParams",
    "SpectreConfig",
    "build_spectre",
    "plan_execve_injection",
    "Scenario",
    "ScenarioConfig",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_table1",
    "ReproError",
    "HidDetector",
    "OnlineHidDetector",
    "Profiler",
    "make_detector",
    "System",
    "build_binary",
    "get_workload",
    "workload_names",
    "__version__",
]
