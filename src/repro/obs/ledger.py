"""Run ledger: durable provenance for every experiment run.

Each CLI experiment run writes a **run manifest** — one JSON document
capturing everything needed to reproduce, diff, and gate the run:

* the resolved knob set (the same ``meta`` dict that keys checkpoint
  identity) and its stable hash,
* the repository's git SHA at run time (best effort, ``None`` outside
  a checkout),
* the sweep plan's cell list with derived seeds and dependencies,
* per-cell statuses (``cached`` normalised to ``ok`` so a resumed run
  and an uninterrupted run produce the same manifest), per-cell metric
  snapshots when tracing was armed,
* the experiment's **headline numbers** (the figures the paper's claims
  live on: per-detector accuracy, evasion minima, IPC overheads) and
  the series behind them,
* digests of the trace sinks, and wall/virtual timing.

Everything except the ``timing`` section is a pure function of
(experiment, knobs, root seed): manifests of a resumed run and an
uninterrupted run are byte-identical once :func:`strip_volatile` drops
the wall-clock fields.  Manifests live under ``<ledger>/<run_id>/`` and
are indexed by ``ledger.jsonl`` at the ledger root; index entries land
first as per-run shards under ``ledger.jsonl.d/`` (merged on read,
consolidated under a lock) so concurrent recorders — dist clients,
parallel CI shards, the chaos harness — never lose each other's
entries to a read-modify-write race.  Every write goes through
:mod:`repro.atomicio`.
"""

import hashlib
import json
import os
import time

from repro.atomicio import atomic_write_json, atomic_write_text

#: Manifest format tag; bump on incompatible shape changes.
LEDGER_FORMAT = "repro-ledger/1"

#: Name of the JSONL index file at the ledger root.
LEDGER_INDEX = "ledger.jsonl"

#: Per-run index shard directory next to the monolithic index.  A
#: rewrite of ``ledger.jsonl`` is a read-modify-write — unsafe when
#: several drivers (a dist client, parallel CI shards, the chaos
#: harness) record runs into one ledger concurrently.  So every
#: recording first lands as its own shard file (atomic rename, one
#: file per run id, no cross-process contention) and the monolith is a
#: *consolidation* of the shards, exactly the checkpoint-shard
#: discipline: shards are merged on read, folded into the monolith
#: opportunistically under an ``O_EXCL`` lock, and never required for
#: correctness once merged.
LEDGER_SHARDS = "ledger.jsonl.d"

#: Manifest keys that vary run-to-run even for identical configs
#: (``__path__`` is the load-time annotation :func:`load_manifest` adds).
VOLATILE_KEYS = ("timing", "__path__")


def stable_hash(payload):
    """sha256 hex digest of a JSON-serialisable object, key-order free."""
    material = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(material).hexdigest()


def run_id_for(experiment, config):
    """Deterministic run identifier: ``<experiment>-<config hash>``.

    Two runs of the same experiment with the same resolved knobs (seed
    included) are the *same reproduction* and share a run directory —
    re-running refreshes the manifest in place, which is exactly what
    the resume-parity contract needs.
    """
    return f"{experiment}-{stable_hash(config)[:12]}"


def git_sha(root="."):
    """The checkout's HEAD commit, or ``None`` when not in a git repo.

    Reads ``.git`` directly (no subprocess): resolves ``HEAD`` through
    one level of ``ref:`` indirection and falls back to
    ``packed-refs``.
    """
    git_dir = os.path.join(root, ".git")
    head_path = os.path.join(git_dir, "HEAD")
    try:
        with open(head_path, encoding="utf-8") as handle:
            head = handle.read().strip()
    except OSError:
        return None
    if not head.startswith("ref:"):
        return head or None
    ref = head.partition(":")[2].strip()
    try:
        with open(os.path.join(git_dir, ref), encoding="utf-8") as handle:
            return handle.read().strip() or None
    except OSError:
        pass
    try:
        with open(os.path.join(git_dir, "packed-refs"),
                  encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line.endswith(ref) and not line.startswith("#"):
                    return line.split()[0]
    except OSError:
        pass
    return None


def file_digest(path):
    """sha256 hex digest of one file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _normalise_status(entry):
    """Cached cells replay a previous run's value; for provenance they
    are completed cells, so a resumed manifest equals an uninterrupted
    one."""
    status = entry.get("status")
    if status == "cached":
        status = "ok"
    out = {"status": status}
    if entry.get("error"):
        out["error"] = entry["error"]
    return out


def _result_section(result, method):
    fn = getattr(result, method, None)
    if fn is None:
        return {}
    try:
        return fn()
    except (ValueError, ZeroDivisionError, KeyError):
        # A heavily-degraded partial result may not support every
        # headline; the manifest records what survived.
        return {}


def build_manifest(experiment, config, result, plan=None, statuses=None,
                   trace_files=None, trace_root=None, timing=None,
                   repo_root=".", profile=None):
    """Assemble one run's manifest dict (see the module docstring).

    *config* is the resolved knob dict (the checkpoint ``meta``),
    *plan* the :class:`~repro.exec.SweepPlan` that was executed,
    *statuses* the cell-status dict :func:`~repro.exec.execute_plan`
    filled, *trace_files* an optional ``{label: path}`` of written
    sinks, *timing* an optional dict of wall-clock fields (kept in the
    volatile section).  Sink paths under *trace_root* (normally the
    run's ledger directory) are recorded relative to it, so manifests
    do not depend on where the ledger lives on disk.

    *profile* is a merged self-profiler snapshot
    (:func:`repro.obs.prof.merge_profiles`); only its deterministic
    sections are stored — the wall-clock part belongs in *timing* —
    so a profiled manifest still compares byte-identical across
    backends.
    """
    statuses = statuses if statuses is not None else getattr(
        result, "cell_status", {}
    )
    cells = []
    if plan is not None:
        for cell in plan:
            entry = {"key": cell.key, "seed": f"{cell.seed:#018x}",
                     "deps": sorted(set(cell.deps.values()))}
            recorded = statuses.get(cell.key)
            entry.update(_normalise_status(recorded) if recorded
                         else {"status": "skipped"})
            cells.append(entry)
    else:
        for key in sorted(statuses):
            cells.append({"key": key, "seed": None, "deps": [],
                          **_normalise_status(statuses[key])})

    traces = None
    if trace_files:
        traces = {}
        for label, path in sorted(trace_files.items()):
            recorded = os.fspath(path)
            if trace_root is not None:
                relative = os.path.relpath(recorded,
                                           os.fspath(trace_root))
                if not relative.startswith(".."):
                    recorded = relative
            traces[label] = {"path": recorded,
                             "sha256": file_digest(path)}

    manifest = {
        "format": LEDGER_FORMAT,
        "run_id": run_id_for(experiment, config),
        "experiment": experiment,
        "seed": config.get("seed"),
        "config": config,
        "config_hash": stable_hash(config),
        "git_sha": git_sha(repo_root),
        "partial": bool(getattr(result, "partial", False)),
        "cells": cells,
        "metrics": getattr(result, "cell_metrics", None) or {},
        "headlines": _result_section(result, "headlines"),
        "series": _result_section(result, "series"),
        "traces": traces,
        "timing": dict(timing or {}),
    }
    if profile is not None:
        from repro.obs.prof import strip_profile_volatile

        manifest["profile"] = strip_profile_volatile(profile)
    return manifest


def strip_volatile(manifest):
    """The manifest minus run-to-run wall-clock fields.

    This is the identity ``repro compare`` diffs and the
    resume-parity acceptance test hashes.
    """
    return {key: value for key, value in manifest.items()
            if key not in VOLATILE_KEYS}


def manifest_bytes(manifest):
    """Canonical serialisation of the non-volatile manifest."""
    return (json.dumps(strip_volatile(manifest), sort_keys=True,
                       indent=1) + "\n").encode("utf-8")


def write_manifest(ledger_dir, manifest):
    """Persist one run: per-run directory + ledger index entry.

    Returns the manifest path.  The index entry is first written as a
    per-run **shard** under ``ledger.jsonl.d/`` (one atomic rename, no
    contention between concurrent recorders), then opportunistically
    consolidated into ``ledger.jsonl`` under an ``O_EXCL`` lock — a
    writer that loses the lock race just leaves its shard behind, and
    :func:`read_index` merges shards on read, so no recording is ever
    lost to a concurrent rewrite.  Re-recording an existing run id
    replaces its entry rather than appending a duplicate.
    """
    ledger_dir = os.fspath(ledger_dir)
    run_dir = os.path.join(ledger_dir, manifest["run_id"])
    os.makedirs(run_dir, exist_ok=True)
    path = os.path.join(run_dir, "manifest.json")
    atomic_write_json(path, manifest)

    entry = {
        "run_id": manifest["run_id"],
        "experiment": manifest["experiment"],
        "seed": manifest["seed"],
        "config_hash": manifest["config_hash"],
        "git_sha": manifest["git_sha"],
        "partial": manifest["partial"],
        "headlines": manifest["headlines"],
        "wall_s": manifest.get("timing", {}).get("wall_s"),
        "path": os.path.relpath(path, ledger_dir),
    }
    shard_dir = os.path.join(ledger_dir, LEDGER_SHARDS)
    os.makedirs(shard_dir, exist_ok=True)
    atomic_write_json(os.path.join(shard_dir, f"{entry['run_id']}.json"),
                      entry)
    consolidate_index(ledger_dir)
    return path


#: A consolidation lock older than this is presumed orphaned by a
#: killed process and is broken.
_LOCK_STALE_S = 30.0


def _read_shards(ledger_dir):
    """Index shards oldest-recorded first: ``[(shard path, entry)]``."""
    shard_dir = os.path.join(os.fspath(ledger_dir), LEDGER_SHARDS)
    try:
        names = os.listdir(shard_dir)
    except OSError:
        return []
    shards = []
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(shard_dir, name)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
            mtime = os.stat(path).st_mtime
        except (OSError, ValueError):
            continue
        shards.append((mtime, path, entry))
    shards.sort(key=lambda item: (item[0], item[2].get("run_id") or ""))
    return [(path, entry) for _, path, entry in shards]


def _read_monolith(index_path):
    entries = []
    try:
        with open(index_path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return entries
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            entries.append(json.loads(line))
        except ValueError:
            continue
    return entries


def _merge_index(monolith, shard_entries):
    """Monolith entries + shard entries, deduplicated by run id.

    A shard supersedes the monolith's entry for the same run (it is
    newer by construction); order is monolith order with superseded
    entries replaced in place, then genuinely new shard entries,
    oldest-recorded first.
    """
    by_id = {entry.get("run_id"): entry for entry in shard_entries}
    merged = []
    seen = set()
    for entry in monolith:
        run_id = entry.get("run_id")
        if run_id in seen:
            continue
        seen.add(run_id)
        merged.append(by_id.pop(run_id, entry))
    for entry in shard_entries:
        run_id = entry.get("run_id")
        if run_id in by_id:
            merged.append(by_id.pop(run_id))
    return merged


def consolidate_index(ledger_dir):
    """Fold index shards into ``ledger.jsonl`` (best effort).

    Guarded by an ``O_EXCL`` lock file so exactly one consolidator
    rewrites the monolith at a time; a caller that loses the race
    returns ``False`` and loses nothing — its shard stays on disk and
    every reader merges shards anyway.  Only the shards actually
    folded in are deleted, so a shard written mid-consolidation
    survives for the next pass.
    """
    ledger_dir = os.fspath(ledger_dir)
    index_path = os.path.join(ledger_dir, LEDGER_INDEX)
    lock_path = index_path + ".lock"
    try:
        fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        try:
            stale = (os.stat(lock_path).st_mtime
                     < time.time() - _LOCK_STALE_S)
        except OSError:
            return False
        if not stale:
            return False
        try:
            os.unlink(lock_path)
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError:
            return False
    try:
        shards = _read_shards(ledger_dir)
        if shards:
            merged = _merge_index(_read_monolith(index_path),
                                  [entry for _, entry in shards])
            atomic_write_text(index_path, "\n".join(
                json.dumps(entry, sort_keys=True, separators=(",", ":"))
                for entry in merged
            ) + "\n")
            for shard_path, _ in shards:
                try:
                    os.unlink(shard_path)
                except OSError:
                    pass
        return True
    finally:
        os.close(fd)
        try:
            os.unlink(lock_path)
        except OSError:
            pass


def load_manifest(ref, ledger_dir="runs"):
    """Resolve *ref* into a manifest dict.

    *ref* may be a manifest file path, a run directory containing
    ``manifest.json``, or a bare run id looked up under *ledger_dir*.
    Raises :class:`OSError` when nothing resolves and
    :class:`ValueError` on malformed content.
    """
    candidates = [
        ref,
        os.path.join(ref, "manifest.json"),
        os.path.join(ledger_dir, ref, "manifest.json"),
    ]
    path = next((c for c in candidates if os.path.isfile(c)), None)
    if path is None:
        raise OSError(f"no run manifest at {ref!r} "
                      f"(tried {', '.join(candidates)})")
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != LEDGER_FORMAT:
        raise ValueError(
            f"{path}: unknown manifest format {manifest.get('format')!r}"
        )
    manifest["__path__"] = path
    return manifest


def read_index(ledger_dir="runs"):
    """All ledger index entries, oldest first (empty when no ledger).

    Merges the monolithic ``ledger.jsonl`` with any unconsolidated
    shards under ``ledger.jsonl.d/`` — a run recorded by a concurrent
    writer that lost the consolidation race is still visible here.
    """
    ledger_dir = os.fspath(ledger_dir)
    index_path = os.path.join(ledger_dir, LEDGER_INDEX)
    return _merge_index(
        _read_monolith(index_path),
        [entry for _, entry in _read_shards(ledger_dir)],
    )
