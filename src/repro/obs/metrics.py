"""Per-cell metrics: counters, gauges, power-of-two histograms.

A :class:`MetricsRegistry` travels with a
:class:`~repro.obs.tracer.Tracer` through one experiment cell and is
snapshotted into the cell's report section and checkpoint shard.
Snapshots are plain sorted-key dicts of ints so they JSON-round-trip
exactly — replaying a cached cell yields the same bytes a fresh run
did.

Naming scheme (see docs/OBSERVABILITY.md): dotted lowercase paths,
``<layer>.<thing>`` (``cpu.cycles``, ``hid.windows``); every emitted
trace record also auto-increments an ``events.<record name>`` counter,
so event totals survive even when the record itself was dropped by the
``max_records`` cap.
"""

#: Histogram bucket upper bounds: powers of two up to 2**20, then +inf.
DEFAULT_BUCKETS = tuple(1 << i for i in range(21))


class MetricsRegistry:
    """Counters / gauges / histograms for one cell."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def inc(self, name, amount=1):
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name, value):
        self.gauges[name] = value

    def observe(self, name, value):
        """Count *value* into the power-of-two histogram *name*."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = {
                "buckets": [0] * (len(DEFAULT_BUCKETS) + 1),
                "count": 0,
                "sum": 0,
            }
        for index, bound in enumerate(DEFAULT_BUCKETS):
            if value <= bound:
                hist["buckets"][index] += 1
                break
        else:
            hist["buckets"][-1] += 1
        hist["count"] += 1
        hist["sum"] += value

    def snapshot(self):
        """JSON-safe, key-sorted copy (deterministic serialisation)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: {
                    "buckets": list(v["buckets"]),
                    "count": v["count"],
                    "sum": v["sum"],
                }
                for k, v in sorted(self.histograms.items())
            },
        }


def format_count(value):
    """Compact human count: 1234 -> '1.2k', 5_000_000 -> '5.0M'."""
    value = float(value)
    for bound, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= bound:
            return f"{value / bound:.1f}{suffix}"
    return f"{int(value)}"


def headline(snapshot):
    """The few numbers worth a progress line / report row.

    Returns an ordered (label, formatted value) list from a
    :meth:`MetricsRegistry.snapshot` dict; missing metrics are skipped
    so sparse snapshots stay short.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    picks = (
        ("cycles", gauges.get("cpu.cycles")),
        ("miss", counters.get("events.cache.miss")),
        ("spec", counters.get("events.cpu.speculate")),
        ("squash", counters.get("ooo.squashes")),
        ("stall", counters.get("ooo.dispatch_stalls")),
        ("rec", gauges.get("trace.records")),
        ("drop", gauges.get("trace.dropped") or None),
    )
    return [(label, format_count(value))
            for label, value in picks if value is not None]


def format_metrics_line(snapshot):
    """'cycles=1.2M miss=3.4k rec=501' — the stderr progress suffix."""
    return " ".join(f"{label}={text}" for label, text in headline(snapshot))
