"""Deterministic self-profiler: where do the simulator's cycles go?

The tracer (:mod:`repro.obs.tracer`) answers "what did the *simulated
machine* do"; this module answers "what does the *simulation* spend its
time on" — the input ROADMAP item 2's superblock translator needs.  A
:class:`Profiler` accumulates three views of one run:

* **per-subsystem buckets** — virtual cycles and event counts
  attributed to :data:`SUBSYSTEMS` (decode / execute / cache+TLB /
  branch / PMU / tracer / syscall), plus wall-clock seconds per bucket,
* **per-opcode tables** — frequency × cycles per ISA opcode,
* **basic-block hotness** — straight-line PC runs keyed by
  ``(start, end)`` with execution count, instruction count and cycles.

Determinism contract: everything except the ``wall`` section is a pure
function of (experiment, knobs, seed) — virtual cycles, counts and
block keys are identical whether a cell ran serially, on the warm
pool, or on a dist worker.  :func:`profile_bytes` is the canonical
serialisation minus wall clock, mirroring
:func:`repro.obs.ledger.manifest_bytes`; the cross-backend parity
tests hash it.

Gating mirrors the tracer exactly: cores bind :func:`current_profiler`
once at construction and divert to an instrumented loop only when the
ambient profiler is enabled *and* its config is active.  The disabled
default (:data:`NULL_PROFILER`) leaves the fast interpreter loop
untouched — a run with no profiler and a run with a fully-filtered one
(``ProfileConfig(subsystems=())``) execute the identical code path.
"""

import contextlib
import dataclasses
import json

from repro.isa.encoding import INSTRUCTION_SIZE
from repro.isa.opcodes import Opcode

#: Attribution buckets.  ``decode`` counts decode-cache misses (decode
#: costs no *virtual* cycles — its price is wall clock); ``tracer``
#: counts trace-record emissions during a profiled+traced run;
#: ``pmu`` is the cost of RDCYCLE/RDINSTRET reads; ``translate``
#: counts superblock translation attempts (wall-only, like decode:
#: compiling a block costs no virtual cycles); everything not
#: otherwise attributable lands in ``execute``.
SUBSYSTEMS = ("decode", "execute", "cache_tlb", "branch", "pmu",
              "tracer", "syscall", "translate")

PROFILE_FORMAT = "repro-prof/1"

#: Default cap on exported basic-block rows (the accumulators keep
#: every block; only the export is ranked and truncated).
DEFAULT_TOP_BLOCKS = 32

_BRANCH_OPS = frozenset(int(op) for op in (
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU,
    Opcode.BGEU, Opcode.JMP, Opcode.JMPR, Opcode.CALL, Opcode.CALLR,
    Opcode.RET,
))
_CACHE_OPS = frozenset((int(Opcode.CLFLUSH), int(Opcode.MFENCE)))
_PMU_OPS = frozenset((int(Opcode.RDCYCLE), int(Opcode.RDINSTRET)))
_SYSCALL_OP = int(Opcode.SYSCALL)

_OP_NAMES = {int(op): op.name for op in Opcode}


@dataclasses.dataclass(frozen=True)
class ProfileConfig:
    """Picklable profiling knobs, shipped to pool/dist workers per cell.

    ``subsystems`` is the enabled subset of :data:`SUBSYSTEMS` (``None``
    means all).  An *empty* tuple is the "enabled but fully filtered"
    state: the profiler object exists, but no core binds it, so the
    fast path is untouched — the profiling analogue of
    ``TraceConfig(categories=())``.  ``top_blocks`` bounds the exported
    basic-block ranking per cell.
    """

    subsystems: tuple = None
    top_blocks: int = DEFAULT_TOP_BLOCKS

    @property
    def active(self):
        """Whether any subsystem is collected at all."""
        return self.subsystems is None or len(self.subsystems) > 0

    def wants(self, subsystem):
        return self.subsystems is None or subsystem in self.subsystems


def parse_profile_filter(spec):
    """``--filter execute,branch`` -> validated subsystem tuple.

    ``None``/empty means "all subsystems".
    """
    if not spec:
        return None
    names = tuple(
        part.strip() for part in str(spec).split(",") if part.strip()
    )
    unknown = sorted(set(names) - set(SUBSYSTEMS))
    if unknown:
        raise ValueError(
            f"unknown profile subsystems {unknown}; "
            f"choose from {', '.join(SUBSYSTEMS)}"
        )
    return names


def _classify(op):
    """The subsystem that absorbs an instruction's residual cycles."""
    if op in _BRANCH_OPS:
        return "branch"
    if op == _SYSCALL_OP:
        return "syscall"
    if op in _PMU_OPS:
        return "pmu"
    if op in _CACHE_OPS:
        return "cache_tlb"
    return "execute"


class Profiler:
    """Recording profiler: one per experiment cell (or CLI run).

    Accumulators are shared across every core the cell builds; the
    per-core sequencing state (previous pc, open basic-block run)
    lives in the caller's loop locals (the in-order core) or in a
    :class:`ProfileCursor` (the out-of-order core), so two CPUs
    interleaving their quanta cannot corrupt each other's block runs.
    """

    enabled = True

    def __init__(self, config=None):
        self.config = config or ProfileConfig()
        self.instructions = 0
        #: subsystem -> [virtual cycles, event count]
        self.subsystems = {name: [0.0, 0] for name in SUBSYSTEMS}
        #: subsystem -> wall seconds (volatile; never compared)
        self.wall = {name: 0.0 for name in SUBSYSTEMS}
        #: opcode int -> [count, cycles]
        self.opcodes = {}
        #: (start pc, end pc) -> [count, instructions, cycles]
        self.blocks = {}

    # -- accounting (called from the cores' profiled loops) ----------

    def instruction(self, op, cycles, mem_stall, br_penalty, missed,
                    wall=0.0, emitted=0):
        """Attribute one retired instruction.

        *cycles* is the instruction's total virtual-cycle delta;
        *mem_stall* / *br_penalty* the memory-stall and mispredict
        counter deltas it caused (attributed to ``cache_tlb`` /
        ``branch``); the remainder goes to the bucket
        :func:`_classify` picks for *op*.  *missed* marks a
        decode-cache miss, *emitted* counts trace records the
        instruction emitted.
        """
        subs = self.subsystems
        self.instructions += 1
        acc = self.opcodes.get(op)
        if acc is None:
            acc = self.opcodes[op] = [0, 0.0]
        acc[0] += 1
        acc[1] += cycles
        if mem_stall > 0:
            bucket = subs["cache_tlb"]
            bucket[0] += mem_stall
            bucket[1] += 1
        if br_penalty > 0:
            bucket = subs["branch"]
            bucket[0] += br_penalty
            bucket[1] += 1
        residual = cycles - mem_stall - br_penalty
        if residual > 0:
            bucket = subs[_classify(op)]
            bucket[0] += residual
            bucket[1] += 1
        if missed:
            subs["decode"][1] += 1
        if emitted:
            subs["tracer"][1] += emitted
        if wall:
            # Wall attribution is coarse by design (and volatile by
            # contract): an instruction that emitted trace records
            # spent its wall in the tracer; a decode miss spent it
            # decoding; otherwise it goes where the cycles went.
            if emitted:
                self.wall["tracer"] += wall
            elif missed:
                self.wall["decode"] += wall
            else:
                self.wall[_classify(op)] += wall

    def translation(self, seconds):
        """Charge one superblock translation attempt.

        Events count attempts (deterministic: a pure function of the
        instruction stream and the heat threshold); the wall clock is
        the compile cost and stays in the volatile section.  Virtual
        cycles are zero by design — translation is simulator work, not
        simulated work.
        """
        self.subsystems["translate"][1] += 1
        self.wall["translate"] += seconds

    def block(self, start, end, instructions, cycles):
        """Close one straight-line PC run ``[start, end]``."""
        acc = self.blocks.get((start, end))
        if acc is None:
            acc = self.blocks[(start, end)] = [0, 0, 0.0]
        acc[0] += 1
        acc[1] += instructions
        acc[2] += cycles

    def add_wall(self, subsystem, seconds):
        """Charge run-level wall clock to one bucket (OoO granularity)."""
        self.wall[subsystem] += seconds

    def cursor(self):
        """Per-core cursor for loops with overlapped timing (OoO)."""
        return ProfileCursor(self)

    # -- export ------------------------------------------------------

    def snapshot(self):
        """JSON-safe export (see the module docstring for the schema).

        Subsystem filtering applies here: collection is all-or-nothing
        (the cost is identical), the *export* honours
        ``config.subsystems`` — and the opcode/block tables ride with
        the ``execute`` subsystem.
        """
        config = self.config
        wanted = [name for name in SUBSYSTEMS if config.wants(name)]
        subsystems = {
            name: {"cycles": round(self.subsystems[name][0], 6),
                   "events": self.subsystems[name][1]}
            for name in wanted
        }
        snapshot = {
            "format": PROFILE_FORMAT,
            "instructions": self.instructions,
            "cycles": round(sum(acc[0] for acc in
                                self.subsystems.values()), 6),
            "subsystems": subsystems,
        }
        if config.wants("execute"):
            snapshot["opcodes"] = {
                _OP_NAMES.get(op, f"op_{op:#04x}"): {
                    "count": acc[0], "cycles": round(acc[1], 6),
                }
                for op, acc in sorted(self.opcodes.items())
            }
            ranked = sorted(
                self.blocks.items(),
                key=lambda item: (-item[1][2], item[0]),
            )[:config.top_blocks]
            snapshot["blocks"] = [
                {"start": f"{start:#010x}", "end": f"{end:#010x}",
                 "count": acc[0], "instructions": acc[1],
                 "cycles": round(acc[2], 6)}
                for (start, end), acc in ranked
            ]
        snapshot["wall"] = {
            "total_s": round(sum(self.wall.values()), 6),
            "subsystems": {name: round(self.wall[name], 6)
                           for name in wanted if self.wall[name]},
        }
        return snapshot


class ProfileCursor:
    """Sequential accounting for cores that cannot time an instruction
    in isolation.

    The out-of-order core's dispatch loop overlaps instructions: the
    cost of instruction *i* is only known when *i+1* reaches dispatch
    (or the run drains).  ``note()`` therefore finalises the *previous*
    instruction with clock/counter deltas and parks the current one;
    ``finish()`` flushes the last instruction against the final commit
    clock, so ROB-drain cycles land on the instruction that caused
    them.
    """

    __slots__ = ("_prof", "_pc", "_op", "_clock", "_mem", "_br",
                 "_miss", "_pending_miss", "_blk_start", "_blk_end",
                 "_blk_instr", "_blk_cycles")

    def __init__(self, profiler):
        self._prof = profiler
        self._pc = -1
        self._op = -1
        self._clock = 0.0
        self._mem = 0
        self._br = 0
        self._miss = False
        self._pending_miss = False
        self._blk_start = -1
        self._blk_end = -1
        self._blk_instr = 0
        self._blk_cycles = 0.0

    def decode_miss(self):
        """Mark the instruction about to be noted as a decode miss."""
        self._pending_miss = True

    def _flush(self, clock, mem_stall, br_penalty, next_pc):
        prof = self._prof
        cycles = clock - self._clock
        if cycles < 0:
            cycles = 0.0
        prof.instruction(self._op, cycles, mem_stall - self._mem,
                         br_penalty - self._br, self._miss)
        self._blk_instr += 1
        self._blk_cycles += cycles
        self._blk_end = self._pc
        if next_pc is None or next_pc != self._pc + INSTRUCTION_SIZE:
            prof.block(self._blk_start, self._blk_end,
                       self._blk_instr, self._blk_cycles)
            self._blk_start = next_pc if next_pc is not None else -1
            self._blk_instr = 0
            self._blk_cycles = 0.0

    def note(self, pc, op, clock, mem_stall, br_penalty):
        """One instruction reached dispatch at *clock*."""
        if self._pc >= 0:
            self._flush(clock, mem_stall, br_penalty, pc)
        else:
            self._blk_start = pc
        self._pc = pc
        self._op = op
        self._clock = clock
        self._mem = mem_stall
        self._br = br_penalty
        self._miss = self._pending_miss
        self._pending_miss = False

    def finish(self, clock, mem_stall, br_penalty):
        """Flush the pending instruction against the final clock."""
        if self._pc >= 0:
            self._flush(clock, mem_stall, br_penalty, None)
            self._pc = -1


class NullProfiler:
    """The default no-op profiler; cores seeing it bind nothing."""

    enabled = False
    config = ProfileConfig(subsystems=())

    def instruction(self, *args, **kwargs):
        pass

    def block(self, *args, **kwargs):
        pass

    def translation(self, seconds):
        pass

    def add_wall(self, subsystem, seconds):
        pass

    def cursor(self):
        return None

    def snapshot(self):
        return {"format": PROFILE_FORMAT, "instructions": 0,
                "cycles": 0.0, "subsystems": {},
                "wall": {"total_s": 0.0, "subsystems": {}}}


#: Shared no-op profiler; the bottom of the ambient stack.
NULL_PROFILER = NullProfiler()

#: Ambient profiler stack, mirroring the tracer's: cores resolve their
#: profiler here at construction instead of threading it through every
#: signature.  Per-process (pool/dist workers activate their own).
_ACTIVE = [NULL_PROFILER]


def current_profiler():
    """The innermost active profiler (:data:`NULL_PROFILER` when off)."""
    return _ACTIVE[-1]


@contextlib.contextmanager
def activate_profile(profiler):
    """Make *profiler* ambient for the duration of a ``with`` block."""
    _ACTIVE.append(profiler)
    try:
        yield profiler
    finally:
        _ACTIVE.pop()


# -- merge / canonical bytes / collapsed stacks -----------------------

def strip_profile_volatile(snapshot):
    """A profile snapshot minus its wall-clock section."""
    return {key: value for key, value in snapshot.items()
            if key != "wall"}


def profile_bytes(snapshot):
    """Canonical serialisation of the deterministic profile sections.

    This is the identity the cross-backend parity tests hash: two
    profiles are "the same" iff their ``profile_bytes`` match.
    """
    return (json.dumps(strip_profile_volatile(snapshot), sort_keys=True,
                       indent=1) + "\n").encode("utf-8")


def merge_profiles(profiles):
    """Fold per-cell snapshots (``{key: snapshot}``) into one.

    Deterministic given deterministic inputs: cells merge in sorted-key
    order, buckets and opcode rows sum, block rows merge by
    ``(start, end)`` and re-rank.  Block rankings are *approximate* at
    the merge level — each cell exported only its own top rows — which
    is the right trade for bounded payloads.
    """
    merged = {
        "format": PROFILE_FORMAT,
        "instructions": 0,
        "cycles": 0.0,
        "subsystems": {},
        "opcodes": {},
        "blocks": [],
        "wall": {"total_s": 0.0, "subsystems": {}},
    }
    blocks = {}
    for key in sorted(profiles):
        snapshot = profiles[key] or {}
        merged["instructions"] += snapshot.get("instructions", 0)
        merged["cycles"] = round(
            merged["cycles"] + snapshot.get("cycles", 0.0), 6
        )
        for name, row in (snapshot.get("subsystems") or {}).items():
            acc = merged["subsystems"].setdefault(
                name, {"cycles": 0.0, "events": 0}
            )
            acc["cycles"] = round(acc["cycles"] + row["cycles"], 6)
            acc["events"] += row["events"]
        for name, row in (snapshot.get("opcodes") or {}).items():
            acc = merged["opcodes"].setdefault(
                name, {"count": 0, "cycles": 0.0}
            )
            acc["count"] += row["count"]
            acc["cycles"] = round(acc["cycles"] + row["cycles"], 6)
        for row in snapshot.get("blocks") or []:
            acc = blocks.setdefault(
                (row["start"], row["end"]),
                {"start": row["start"], "end": row["end"], "count": 0,
                 "instructions": 0, "cycles": 0.0},
            )
            acc["count"] += row["count"]
            acc["instructions"] += row["instructions"]
            acc["cycles"] = round(acc["cycles"] + row["cycles"], 6)
        wall = snapshot.get("wall") or {}
        merged["wall"]["total_s"] = round(
            merged["wall"]["total_s"] + wall.get("total_s", 0.0), 6
        )
        for name, seconds in (wall.get("subsystems") or {}).items():
            merged["wall"]["subsystems"][name] = round(
                merged["wall"]["subsystems"].get(name, 0.0) + seconds, 6
            )
    merged["blocks"] = sorted(
        blocks.values(),
        key=lambda row: (-row["cycles"], row["start"], row["end"]),
    )
    return merged


def collapsed_stack(profiles, by="subsystem"):
    """Flamegraph.pl-compatible collapsed-stack lines.

    One line per ``<cell>;<frame> <count>`` with virtual cycles as the
    count; *by* picks the leaf frame dimension (``subsystem``,
    ``opcode`` or ``block``).  Feed the output straight to
    ``flamegraph.pl`` (or any collapsed-stack viewer).
    """
    if by not in ("subsystem", "opcode", "block"):
        raise ValueError(
            f"unknown collapse dimension {by!r}; choose from "
            f"subsystem, opcode, block"
        )
    lines = []
    for key in sorted(profiles):
        snapshot = profiles[key] or {}
        root = str(key).replace(";", "_").replace(" ", "_")
        if by == "subsystem":
            for name in sorted(snapshot.get("subsystems") or {}):
                count = int(round(
                    snapshot["subsystems"][name]["cycles"]
                ))
                if count:
                    lines.append(f"{root};{name} {count}")
        elif by == "opcode":
            for name in sorted(snapshot.get("opcodes") or {}):
                count = int(round(snapshot["opcodes"][name]["cycles"]))
                if count:
                    lines.append(f"{root};{name} {count}")
        else:
            for row in snapshot.get("blocks") or []:
                count = int(round(row["cycles"]))
                if count:
                    lines.append(
                        f"{root};block_{row['start']}-{row['end']} "
                        f"{count}"
                    )
    return "\n".join(lines) + ("\n" if lines else "")


def format_hotspots(merged, top=15):
    """Human tables: subsystems, top opcodes, top basic blocks."""
    from repro.core.reporting import format_table

    total = merged.get("cycles") or 0.0
    parts = []

    def share(cycles):
        return f"{100.0 * cycles / total:5.1f}%" if total else "    -"

    rows = [
        [name, f"{row['cycles']:.0f}", share(row["cycles"]),
         str(row["events"])]
        for name, row in sorted(
            (merged.get("subsystems") or {}).items(),
            key=lambda item: -item[1]["cycles"],
        )
    ]
    parts.append(format_table(
        ["subsystem", "cycles", "share", "events"], rows,
        title=(f"hotspots: {merged.get('instructions', 0)} instructions, "
               f"{total:.0f} virtual cycles"),
    ))
    opcodes = sorted(
        (merged.get("opcodes") or {}).items(),
        key=lambda item: -item[1]["cycles"],
    )[:top]
    if opcodes:
        rows = [[name, str(row["count"]), f"{row['cycles']:.0f}",
                 share(row["cycles"])] for name, row in opcodes]
        parts.append(format_table(
            ["opcode", "count", "cycles", "share"], rows,
            title=f"top {len(rows)} opcodes by cycles",
        ))
    blocks = (merged.get("blocks") or [])[:top]
    if blocks:
        rows = [
            [f"{row['start']}-{row['end']}", str(row["count"]),
             str(row["instructions"]), f"{row['cycles']:.0f}",
             share(row["cycles"])]
            for row in blocks
        ]
        parts.append(format_table(
            ["basic block", "runs", "instructions", "cycles", "share"],
            rows, title=f"top {len(rows)} basic blocks by cycles",
        ))
    return "\n\n".join(parts)
