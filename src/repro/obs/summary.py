"""Trace summary: top spans by virtual time, event counts.

Powers ``repro trace FILE``: a quick aggregate view of a JSONL sink so
a surprising cell can be triaged without loading Perfetto.  Durations
are *virtual* (cycles on clk>=1 channels, record ordinals on the
sequence clock), so summaries are as deterministic as the traces.
"""

from repro.core.reporting import format_table
from repro.obs.metrics import format_count


def summarize(records):
    """Aggregate a record list; returns a plain dict.

    ``spans`` maps span name -> {count, total, max} virtual duration,
    from ``X`` records and matched ``B``/``E`` pairs (matched per
    (cell, clk) stack, so interleaved cells never cross-link).
    ``events`` maps point-event name -> count.
    """
    spans = {}
    events = {}
    stacks = {}
    dangling = 0

    def span(name, dur):
        entry = spans.setdefault(name, {"count": 0, "total": 0, "max": 0})
        entry["count"] += 1
        entry["total"] += dur
        entry["max"] = max(entry["max"], dur)

    for record in records:
        ph = record["ph"]
        if ph == "X":
            span(record["name"], record.get("dur", 0))
        elif ph == "B":
            stacks.setdefault(
                (record.get("cell"), record["clk"]), []
            ).append(record)
        elif ph == "E":
            stack = stacks.get((record.get("cell"), record["clk"]))
            if stack:
                opened = stack.pop()
                span(opened["name"], record["ts"] - opened["ts"])
            else:
                dangling += 1
        elif ph == "i":
            events[record["name"]] = events.get(record["name"], 0) + 1
    dangling += sum(len(stack) for stack in stacks.values())

    cells = []
    for record in records:
        cell = record.get("cell")
        if cell is not None and cell not in cells:
            cells.append(cell)
    return {
        "records": len(records),
        "cells": cells,
        "spans": spans,
        "events": events,
        # "unmatched" is the legacy alias; "dangling" is the canonical
        # counter (B without E, or E without B — truncated traces and
        # crashed cells both show up here).
        "dangling": dangling,
        "unmatched": dangling,
    }


def format_summary(header, records, top=10):
    """Render the aggregate view of one JSONL sink as text."""
    stats = summarize(records)
    lines = [
        f"trace: {header.get('experiment', '?')} — "
        f"{stats['records']} records, {len(stats['cells'])} cell(s)"
    ]

    ranked = sorted(
        stats["spans"].items(),
        key=lambda item: (-item[1]["total"], item[0]),
    )[:top]
    if ranked:
        lines.append(format_table(
            ["span", "count", "total vt", "mean vt", "max vt"],
            [
                [name, str(entry["count"]),
                 format_count(entry["total"]),
                 format_count(entry["total"] / entry["count"]),
                 format_count(entry["max"])]
                for name, entry in ranked
            ],
            title=f"top {len(ranked)} spans by virtual time",
        ))
    counted = sorted(stats["events"].items(),
                     key=lambda item: (-item[1], item[0]))[:top]
    if counted:
        lines.append(format_table(
            ["event", "count"],
            [[name, str(count)] for name, count in counted],
            title="event counts",
        ))
    if stats["dangling"]:
        lines.append(
            f"warning: {stats['dangling']} dangling span record(s) "
            f"(unmatched B/E — truncated or crashed trace?)"
        )
    return "\n".join(lines)
