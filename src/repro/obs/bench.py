"""The perf-trend ledger: one bench entry point, history, regression.

Five ``BENCH_*.json`` snapshots tell you where the repo *is*; this
module records where it has *been*.  :func:`run_suite` drives the
existing ``benchmarks/bench_*.py`` machinery (their knobs, their
measurement helpers — not a parallel reimplementation) through one
entry point, :func:`append_history` appends the measurement as one
schema-versioned JSONL row to ``benchmarks/history.jsonl`` (append-only
via :func:`repro.atomicio.append_jsonl`, so concurrent CI runs
interleave at line granularity), and :func:`check_regression` turns
the latest row into a verdict against the committed baselines — exit 5
on regression, mirroring ``repro gate``.

The history file is an *observability* artefact, not a determinism
one: rows carry wall-clock throughput, the host's ``cpu_count`` and
the checkout's git SHA precisely so that numbers from different
machines and commits can be told apart when reading the trend.
"""

import datetime
import os
import pathlib
import sys
import time

from repro.atomicio import append_jsonl, read_jsonl_tolerant
from repro.obs.ledger import git_sha

HISTORY_FORMAT = "repro-bench-history/1"

#: Suites the unified runner can drive; ``all`` fans out over them.
SUITES = ("core", "exec", "obs")

#: Keys every history row must carry.
ROW_KEYS = ("format", "ts", "bench", "quick", "git_sha", "cpu_count",
            "knobs", "metrics")

#: Eight-level block ramp used for terminal sparklines.
_SPARK = "▁▂▃▄▅▆▇█"


def repo_root():
    """The checkout root (``src/repro/obs/bench.py`` -> four up)."""
    return pathlib.Path(__file__).resolve().parent.parent.parent.parent


def default_history_path():
    return repo_root() / "benchmarks" / "history.jsonl"


def _ensure_benchmarks_importable():
    """Make the repo-root ``benchmarks`` package importable.

    The bench suites live outside ``src`` (they are dev tooling, not
    shipped code); the CLI may run from any cwd, so the checkout root
    joins ``sys.path`` on demand.
    """
    root = str(repo_root())
    if root not in sys.path:
        sys.path.insert(0, root)


# -- suite drivers ----------------------------------------------------

def _suite_core(quick):
    """Interpreter throughput: instr/s per kernel, both engines."""
    from benchmarks.bench_core import KERNELS, _measure

    kernels = (tuple((name, max(1, iters // 5))
                     for name, iters in KERNELS)
               if quick else tuple(KERNELS))
    knobs = {"kernels": {name: iters for name, iters in kernels},
             "uarch": "inorder"}
    metrics = {}
    for name, iterations in kernels:
        for engine in ("fast", "sb"):
            prefix = name if engine == "fast" else f"sb/{name}"
            measured = _measure(name, iterations, engine=engine)
            metrics[f"{prefix}.instructions_per_s"] = \
                measured["instructions_per_s"]
            metrics[f"{prefix}.cache_accesses_per_s"] = \
                measured["cache_accesses_per_s"]
            metrics[f"{prefix}.wall_s"] = measured["wall_s"]
    return knobs, metrics


def _suite_exec(quick):
    """Sweep throughput: serial cells/s on the reduced fig5 plan."""
    from benchmarks.bench_exec import KNOBS
    from repro.core.experiments import run_fig5
    from repro.core.experiments.fig5 import plan_fig5

    knobs = dict(KNOBS)
    if quick:
        knobs.update(attempts=2, training_benign=40, training_attack=40,
                     attempt_samples=12, attempt_benign=6)
    cells = len(plan_fig5(**knobs))
    started = time.perf_counter()
    run_fig5(jobs=1, **knobs)
    wall = time.perf_counter() - started
    recorded = {key: list(value) if isinstance(value, tuple) else value
                for key, value in knobs.items()}
    return recorded, {
        "serial.cells_per_s": round(cells / wall, 3),
        "serial.wall_s": round(wall, 3),
        "cells": cells,
    }


def _suite_obs(quick):
    """Tracing overhead: filtered-vs-off on the in-order core.

    Minimum-of-rounds, the BENCH_obs estimator; a single quick round is
    noisy by construction, which is why the obs suite is recorded in
    the history but exempt from the regression verdict.
    """
    from benchmarks.bench_obs import _timed

    rounds = 1 if quick else 3
    floors = {}
    for mode in ("off", "filtered"):
        floors[mode] = min(_timed("inorder", mode)[0]
                           for _ in range(rounds))
    overhead = floors["filtered"] / floors["off"] - 1.0
    return {"workload": "basicmath", "uarch": "inorder",
            "rounds": rounds}, {
        "inorder.off_s": round(floors["off"], 4),
        "inorder.filtered_s": round(floors["filtered"], 4),
        "inorder.overhead_filtered_pct": round(100 * overhead, 2),
    }


_DRIVERS = {"core": _suite_core, "exec": _suite_exec, "obs": _suite_obs}


def run_suite(suite, quick=False):
    """Run one bench suite in-process; returns ``(knobs, metrics)``."""
    if suite not in _DRIVERS:
        raise ValueError(
            f"unknown bench suite {suite!r}; choose from "
            f"{', '.join(SUITES)} (or 'all')"
        )
    _ensure_benchmarks_importable()
    return _DRIVERS[suite](quick)


# -- the history ledger -----------------------------------------------

def build_row(bench, knobs, metrics, quick=False, now=None):
    """Assemble one schema-versioned history row."""
    if now is None:
        now = datetime.datetime.now(datetime.timezone.utc)
    return {
        "format": HISTORY_FORMAT,
        "ts": now.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "bench": bench,
        "quick": bool(quick),
        "git_sha": git_sha(str(repo_root())),
        "cpu_count": os.cpu_count(),
        "knobs": knobs,
        "metrics": metrics,
    }


def validate_row(row):
    """True iff *row* is a well-formed history row (current format)."""
    return (isinstance(row, dict)
            and row.get("format") == HISTORY_FORMAT
            and all(key in row for key in ROW_KEYS)
            and isinstance(row.get("metrics"), dict))


def append_history(path, row):
    """Append one validated row; returns the byte count written."""
    if not validate_row(row):
        raise ValueError(f"malformed bench-history row: {row!r}")
    return append_jsonl(path, row)


def read_history(path, bench=None):
    """All well-formed rows of a history file, oldest first.

    Torn or foreign lines are skipped (same tolerance as the fleet
    journal); *bench* filters to one suite.
    """
    rows = [row for row in read_jsonl_tolerant(path) if validate_row(row)]
    if bench is not None:
        rows = [row for row in rows if row["bench"] == bench]
    return rows


def sparkline(values):
    """Block-character sparkline of a numeric series (min..max ramp)."""
    values = [float(value) for value in values]
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return _SPARK[0] * len(values)
    span = high - low
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((value - low) / span * len(_SPARK)))]
        for value in values
    )


def render_trend(rows, last=20):
    """Per-metric sparklines over the most recent *last* rows.

    One block per bench present in *rows*; each metric line shows the
    series sparkline, the latest value, and the span of observed
    values.  Mixed-host series are flagged (throughput from different
    ``cpu_count`` boxes is not one curve).
    """
    lines = []
    benches = sorted({row["bench"] for row in rows})
    for bench in benches:
        series = [row for row in rows if row["bench"] == bench][-last:]
        hosts = sorted({row.get("cpu_count") for row in series})
        suffix = ""
        if len(hosts) > 1:
            suffix = f"  [mixed hosts: cpu_count in {hosts}]"
        lines.append(f"{bench}: {len(series)} run(s), latest "
                     f"{series[-1]['ts']} "
                     f"@ {str(series[-1]['git_sha'])[:10]}{suffix}")
        metric_names = sorted(series[-1]["metrics"])
        for name in metric_names:
            values = [row["metrics"][name] for row in series
                      if name in row["metrics"]
                      and isinstance(row["metrics"][name], (int, float))]
            if not values:
                continue
            lines.append(
                f"  {name:<34} {sparkline(values):<{min(last, 20)}} "
                f"latest {values[-1]:,.6g} "
                f"(min {min(values):,.6g}, max {max(values):,.6g})"
            )
    if not lines:
        lines.append("bench history is empty — run `repro bench` first")
    return "\n".join(lines)


# -- the regression verdict -------------------------------------------

def _load_baseline(bench):
    import json

    path = repo_root() / f"BENCH_{bench}.json"
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def regression_floors():
    """Metric floors derived from the committed baselines.

    * ``core`` floors are **host-independent**: the BENCH_core contract
      is "≥ MIN_SPEEDUP × the pre-fast-path interpreter", so any box
      that can't clear that bar has genuinely regressed (or is not a
      box we benchmark on).
    * ``exec`` floors are generous fractions of the committed serial
      cells/s — sweep wall time swings with host load, so only a halving
      counts as a regression signal.
    * ``obs`` is exempt: one-round overhead percentages whip around too
      much for a meaningful floor; BENCH_obs's own min-of-9-rounds gate
      remains the enforcement point.
    """
    floors = {}
    _ensure_benchmarks_importable()
    try:
        from benchmarks.bench_core import MIN_SPEEDUP, PRE_CHANGE
    except ImportError:
        MIN_SPEEDUP, PRE_CHANGE = None, None
    if PRE_CHANGE is not None:
        # Instructions/s only — BENCH_core's own gate; cache-access
        # rate varies with kernel shape (sha does few accesses per
        # instruction) and is reported, not floored.
        floors[("core", "instructions_per_s")] = (
            MIN_SPEEDUP * PRE_CHANGE["instructions_per_s"]
        )
    try:
        from benchmarks.bench_core import FAST_COMMITTED, SB_MIN_SPEEDUP
    except ImportError:
        FAST_COMMITTED = None
    if FAST_COMMITTED is not None:
        # The superblock engine's bar, keyed exactly per kernel so the
        # bare-suffix fallback above never mixes the two gates: sb/*
        # must hold SB_MIN_SPEEDUP × the fast-loop rows committed to
        # BENCH_core.json when the translator landed.
        for name, committed in FAST_COMMITTED.items():
            floors[("core", f"sb/{name}.instructions_per_s")] = (
                SB_MIN_SPEEDUP * committed
            )
    baseline = _load_baseline("exec")
    if baseline is not None:
        serial = (baseline.get("runs") or {}).get("1") or {}
        cells_per_s = serial.get("cells_per_s")
        if cells_per_s:
            floors[("exec", "serial.cells_per_s")] = 0.5 * cells_per_s
    return floors


def check_regression(rows, floors=None):
    """The latest row per bench vs the committed floors.

    Returns a list of human-readable failures, **first regressed metric
    first** (suite order, then metric name) — empty means the verdict
    is green.  A bench with history but no floor contributes nothing;
    a floored metric missing from the latest row is itself a failure
    (a vanished metric must not read as a pass).
    """
    if floors is None:
        floors = regression_floors()
    failures = []
    for bench in SUITES:
        series = [row for row in rows if row["bench"] == bench]
        if not series:
            continue
        latest = series[-1]
        bench_floors = sorted(
            (metric, floor) for (floor_bench, metric), floor
            in floors.items() if floor_bench == bench
        )
        for metric, floor in bench_floors:
            observed = latest["metrics"].get(metric)
            if observed is None and "." not in metric:
                # Bare-counter floors (e.g. ``instructions_per_s``)
                # match any per-kernel metric ending in them; dotted
                # floors (``sb/sha.instructions_per_s``) are exact-keyed
                # and must never fall back onto another engine's rows.
                candidates = [
                    value for name, value in latest["metrics"].items()
                    if name.rsplit(".", 1)[-1] == metric
                    and isinstance(value, (int, float))
                ]
                if candidates:
                    observed = min(candidates)
            if observed is None:
                failures.append(
                    f"{bench}: metric {metric!r} missing from the "
                    f"latest history row ({latest['ts']})"
                )
                continue
            if observed < floor:
                failures.append(
                    f"{bench}: {metric} regressed — latest "
                    f"{observed:,.6g} < floor {floor:,.6g} "
                    f"(row {latest['ts']} @ "
                    f"{str(latest['git_sha'])[:10]}, "
                    f"cpu_count {latest['cpu_count']})"
                )
    return failures


def format_metrics(bench, knobs, metrics):
    """One-run summary table for the CLI."""
    from repro.core.reporting import format_table

    rows = [[name, f"{value:,.6g}" if isinstance(value, (int, float))
             else str(value)]
            for name, value in sorted(metrics.items())]
    return format_table(
        ["metric", "value"], rows,
        title=f"bench {bench} — cpu_count {os.cpu_count()}",
    )
