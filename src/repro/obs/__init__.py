"""repro.obs — deterministic tracing, metrics, and the run ledger.

See docs/OBSERVABILITY.md for the span taxonomy, the virtual-time
guarantees, and the Perfetto workflow; docs/LEDGER.md for the run
manifest schema and the compare/gate/report workflow built on it.
"""

from repro.obs.compare import (
    diff_count,
    diff_manifests,
    first_divergence,
    format_compare,
    localize_trace_divergence,
)
from repro.obs.gate import (
    DEFAULT_EXPECTATIONS,
    DEFAULT_PROFILE,
    EXPECTATIONS_FORMAT,
    ExpectationsError,
    bands_for,
    check_headlines,
    format_gate,
    gate_passed,
    load_expectations,
)
from repro.obs.ledger import (
    LEDGER_FORMAT,
    LEDGER_INDEX,
    build_manifest,
    file_digest,
    git_sha,
    load_manifest,
    manifest_bytes,
    read_index,
    run_id_for,
    stable_hash,
    strip_volatile,
    write_manifest,
)
from repro.obs.metrics import (
    MetricsRegistry,
    format_count,
    format_metrics_line,
    headline,
)
from repro.obs.report import render_html
from repro.obs.sinks import (
    TRACE_FORMAT,
    TraceSchemaError,
    chrome_trace,
    read_chrome,
    read_jsonl,
    read_trace,
    trace_jsonl,
    validate_record,
    write_trace_files,
)
from repro.obs.summary import format_summary, summarize
from repro.obs.tracer import (
    CATEGORIES,
    NULL,
    NullTracer,
    TraceChannel,
    TraceConfig,
    Tracer,
    activate,
    current_tracer,
    parse_filter,
)

__all__ = [
    "CATEGORIES",
    "DEFAULT_EXPECTATIONS",
    "DEFAULT_PROFILE",
    "EXPECTATIONS_FORMAT",
    "ExpectationsError",
    "LEDGER_FORMAT",
    "LEDGER_INDEX",
    "MetricsRegistry",
    "NULL",
    "NullTracer",
    "TRACE_FORMAT",
    "TraceChannel",
    "TraceConfig",
    "TraceSchemaError",
    "Tracer",
    "activate",
    "bands_for",
    "build_manifest",
    "check_headlines",
    "chrome_trace",
    "current_tracer",
    "diff_count",
    "diff_manifests",
    "file_digest",
    "first_divergence",
    "format_compare",
    "format_count",
    "format_gate",
    "format_metrics_line",
    "format_summary",
    "gate_passed",
    "git_sha",
    "headline",
    "load_expectations",
    "load_manifest",
    "localize_trace_divergence",
    "manifest_bytes",
    "parse_filter",
    "read_chrome",
    "read_index",
    "read_jsonl",
    "read_trace",
    "render_html",
    "run_id_for",
    "stable_hash",
    "strip_volatile",
    "summarize",
    "trace_jsonl",
    "validate_record",
    "write_manifest",
    "write_trace_files",
]
