"""repro.obs — deterministic tracing & metrics for the whole stack.

See docs/OBSERVABILITY.md for the span taxonomy, the virtual-time
guarantees, and the Perfetto workflow.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    format_count,
    format_metrics_line,
    headline,
)
from repro.obs.sinks import (
    TRACE_FORMAT,
    TraceSchemaError,
    chrome_trace,
    read_jsonl,
    trace_jsonl,
    validate_record,
    write_trace_files,
)
from repro.obs.summary import format_summary, summarize
from repro.obs.tracer import (
    CATEGORIES,
    NULL,
    NullTracer,
    TraceChannel,
    TraceConfig,
    Tracer,
    activate,
    current_tracer,
    parse_filter,
)

__all__ = [
    "CATEGORIES",
    "MetricsRegistry",
    "NULL",
    "NullTracer",
    "TRACE_FORMAT",
    "TraceChannel",
    "TraceConfig",
    "TraceSchemaError",
    "Tracer",
    "activate",
    "chrome_trace",
    "current_tracer",
    "format_count",
    "format_metrics_line",
    "format_summary",
    "headline",
    "parse_filter",
    "read_jsonl",
    "summarize",
    "trace_jsonl",
    "validate_record",
    "write_trace_files",
]
