"""Static HTML dashboard for one ledger run (``repro report --html``).

Renders a run manifest as a single self-contained HTML file — inline
CSS, inline SVG sparklines, **no JavaScript and no external assets** —
so the artifact can be archived from CI and opened anywhere:

* headline tiles (the paper-claim numbers, colour-coded by gate verdict
  when an expectations file is supplied),
* accuracy-vs-attempt sparklines from the manifest's series section,
  with the paper's 80 % detection and 55 % evasion reference lines,
* per-cell status + metric tables,
* the resolved config and provenance block (git SHA, config hash,
  trace digests).
"""

import html

from repro.obs.metrics import format_count, headline as metric_headline

#: Reference lines drawn on accuracy sparklines (paper Sections III/IV).
DETECTION_LINE = 0.80
EVASION_LINE = 0.55

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e;
       background: #fafafa; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.meta { color: #555; font-size: .85rem; }
.meta code { background: #eee; padding: 0 .3em; border-radius: 3px; }
.tiles { display: flex; flex-wrap: wrap; gap: .8rem; margin: 1rem 0; }
.tile { background: #fff; border: 1px solid #ddd; border-radius: 8px;
        padding: .8rem 1.2rem; min-width: 11rem; }
.tile .value { font-size: 1.6rem; font-weight: 600; }
.tile .label { color: #666; font-size: .8rem; }
.tile.pass { border-left: 5px solid #2e8540; }
.tile.fail { border-left: 5px solid #c0392b; background: #fdf0ee; }
.tile .band { font-size: .75rem; color: #888; }
table { border-collapse: collapse; background: #fff; font-size: .85rem; }
th, td { border: 1px solid #ddd; padding: .35rem .7rem;
         text-align: left; }
th { background: #f0f0f5; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.status-ok { color: #2e8540; } .status-failed { color: #c0392b; }
.status-skipped { color: #888; }
.partial { background: #fdf0ee; border: 1px solid #c0392b;
           padding: .6rem 1rem; border-radius: 6px; }
.spark { margin: .4rem 0; }
.spark .name { display: inline-block; width: 16rem; font-size: .85rem; }
"""


def _esc(value):
    return html.escape(str(value), quote=True)


def format_headline_value(name, value):
    """Human rendering of a headline number.

    Ratio-style headlines (accuracies, overheads, improvements) render
    as percentages; everything else as a compact count.
    """
    if not isinstance(value, (int, float)):
        return _esc(value)
    ratioish = any(tag in name for tag in
                   ("accuracy", "overhead", "improvement", "rate"))
    if ratioish and -1.0 <= value <= 1.0:
        return f"{100.0 * value:.1f}%"
    if isinstance(value, float):
        return f"{value:.4g}"
    return format_count(value)


def _sparkline_svg(values, width=260, height=44, pad=3):
    """Inline SVG polyline; fixed 0..1 domain for ratio series (with
    the detection/evasion reference lines), min..max otherwise."""
    if not values:
        return ""
    ratioish = all(0.0 <= v <= 1.0 for v in values)
    lo, hi = (0.0, 1.0) if ratioish else (min(values), max(values))
    span = (hi - lo) or 1.0

    def x(i):
        if len(values) == 1:
            return width / 2
        return pad + i * (width - 2 * pad) / (len(values) - 1)

    def y(v):
        return height - pad - (v - lo) / span * (height - 2 * pad)

    points = " ".join(f"{x(i):.1f},{y(v):.1f}"
                      for i, v in enumerate(values))
    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}" role="img">']
    if ratioish:
        for level, colour in ((DETECTION_LINE, "#2e8540"),
                              (EVASION_LINE, "#c0392b")):
            parts.append(
                f'<line x1="0" y1="{y(level):.1f}" x2="{width}" '
                f'y2="{y(level):.1f}" stroke="{colour}" '
                f'stroke-dasharray="4 3" stroke-width="1" '
                f'opacity="0.6"/>'
            )
    parts.append(f'<polyline points="{points}" fill="none" '
                 f'stroke="#30506e" stroke-width="1.8"/>')
    for i, v in enumerate(values):
        parts.append(f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" '
                     f'r="2.2" fill="#30506e"/>')
    parts.append("</svg>")
    return "".join(parts)


def _tiles(manifest, checks_by_headline):
    parts = ['<div class="tiles">']
    headlines = manifest.get("headlines") or {}
    for name in sorted(headlines):
        value = headlines[name]
        check = checks_by_headline.get(name)
        css = "tile"
        band = ""
        if check is not None:
            css += " pass" if check["ok"] else " fail"
            band = f'<div class="band">band: {_esc(_band(check))}</div>'
        parts.append(
            f'<div class="{css}">'
            f'<div class="value">'
            f'{format_headline_value(name, value)}</div>'
            f'<div class="label">{_esc(name)}</div>{band}</div>'
        )
    if not headlines:
        parts.append("<p class='meta'>no headlines recorded</p>")
    parts.append("</div>")
    return parts


def _band(check):
    band = check["band"]
    bits = []
    if "min" in band:
        bits.append(f"≥ {band['min']}")
    if "max" in band:
        bits.append(f"≤ {band['max']}")
    return " and ".join(bits)


def _series_section(manifest):
    series = manifest.get("series") or {}
    if not series:
        return []
    parts = ["<h2>Series</h2>"]
    for name in sorted(series):
        values = series[name]
        if not values:
            continue
        tail = format_headline_value(name, values[-1])
        parts.append(
            f'<div class="spark"><span class="name">{_esc(name)} '
            f'({len(values)} pts, last {tail})</span>'
            f'{_sparkline_svg(values)}</div>'
        )
    return parts


def _pipeline_section(manifest):
    """Aggregate OoO pipeline-pressure telemetry across the run's cells.

    Rendered only when at least one cell snapshot carries an
    ``ooo.rob.occupancy`` histogram (i.e. a traced ``--uarch ooo``
    run): a summed power-of-two ROB-occupancy histogram as SVG bars,
    plus the summed squash/wrong-path/stall counters — the
    speculation-pressure view fig5 rows are read against.
    """
    from repro.obs.metrics import DEFAULT_BUCKETS

    metrics = manifest.get("metrics") or {}
    buckets = None
    count = 0
    total = 0
    counters = {}
    for snapshot in metrics.values():
        if not isinstance(snapshot, dict):
            continue
        hist = (snapshot.get("histograms") or {}).get(
            "ooo.rob.occupancy")
        if hist:
            if buckets is None:
                buckets = [0] * len(hist["buckets"])
            for index, value in enumerate(hist["buckets"]):
                buckets[index] += value
            count += hist.get("count", 0)
            total += hist.get("sum", 0)
        for name, value in (snapshot.get("counters") or {}).items():
            if name.startswith("ooo."):
                counters[name] = counters.get(name, 0) + value
    if buckets is None:
        return []
    parts = ["<h2>Pipeline (out-of-order)</h2>"]
    mean = total / count if count else 0.0
    parts.append(
        f'<p class="meta">ROB occupancy: {count} samples, '
        f'mean {mean:.1f} entries</p>'
    )
    # Horizontal bar chart of the pow2 histogram, empty tail elided.
    last = max((i for i, v in enumerate(buckets) if v), default=0)
    shown = buckets[:last + 1]
    peak = max(shown) or 1
    bar_w, bar_h, gap = 18, 60, 2
    width = len(shown) * (bar_w + gap)
    svg = [f'<svg width="{width}" height="{bar_h + 14}" '
           f'viewBox="0 0 {width} {bar_h + 14}" role="img">']
    for index, value in enumerate(shown):
        h = value / peak * bar_h
        x0 = index * (bar_w + gap)
        label = (format_count(DEFAULT_BUCKETS[index])
                 if index < len(DEFAULT_BUCKETS) else "inf")
        svg.append(f'<rect x="{x0}" y="{bar_h - h:.1f}" '
                   f'width="{bar_w}" height="{h:.1f}" fill="#30506e">'
                   f'<title>&le;{label}: {value}</title></rect>')
        svg.append(f'<text x="{x0 + bar_w / 2:.1f}" y="{bar_h + 11}" '
                   f'font-size="7" text-anchor="middle" '
                   f'fill="#666">{label}</text>')
    svg.append("</svg>")
    parts.append('<div class="spark"><span class="name">'
                 'ROB occupancy (pow2 buckets)</span>'
                 + "".join(svg) + "</div>")
    if counters:
        parts.extend(["<table>",
                      "<tr><th>counter</th><th>total</th></tr>"])
        for name in sorted(counters):
            parts.append(
                f'<tr><td>{_esc(name)}</td>'
                f'<td class="num">{format_count(counters[name])}'
                f'</td></tr>'
            )
        parts.append("</table>")
    return parts


#: Stable subsystem colours for the hotspots flame bar.
_PROF_COLOURS = {
    "decode": "#8e6fae", "execute": "#30506e", "cache_tlb": "#2e8540",
    "branch": "#c0392b", "pmu": "#b8860b", "tracer": "#5b8fa8",
    "syscall": "#777777",
}


def _hotspots_section(manifest):
    """Self-profiler attribution for a ``--hotspots`` run.

    Rendered only when the manifest carries a merged profile
    (:func:`repro.obs.prof.merge_profiles` output, volatile section
    stripped): a one-level flame bar of virtual cycles by subsystem,
    the top opcodes, and the hottest basic blocks — the ranking the
    ROADMAP item-2 superblock translator reads.
    """
    prof = manifest.get("profile")
    if not prof:
        return []
    total = prof.get("cycles") or 0.0
    parts = ["<h2>Hotspots</h2>"]
    parts.append(
        f'<p class="meta">{prof.get("instructions", 0):,} simulated '
        f'instructions, {total:,.0f} virtual cycles attributed by the '
        f'self-profiler (deterministic sections only)</p>'
    )
    subsystems = prof.get("subsystems") or {}
    ranked = sorted(subsystems.items(),
                    key=lambda item: -item[1]["cycles"])
    if ranked and total > 0:
        # One-level flame bar: each subsystem a proportional segment.
        width, height = 640, 34
        svg = [f'<svg width="{width}" height="{height + 14}" '
               f'viewBox="0 0 {width} {height + 14}" role="img">']
        x0 = 0.0
        for name, row in ranked:
            share = row["cycles"] / total
            w = share * width
            if w < 0.5:
                continue
            colour = _PROF_COLOURS.get(name, "#999999")
            svg.append(
                f'<rect x="{x0:.1f}" y="0" width="{w:.1f}" '
                f'height="{height}" fill="{colour}">'
                f'<title>{_esc(name)}: {row["cycles"]:,.0f} cycles '
                f'({100 * share:.1f}%), {row["events"]:,} events'
                f'</title></rect>'
            )
            if w > 48:
                svg.append(
                    f'<text x="{x0 + w / 2:.1f}" y="{height - 12}" '
                    f'font-size="10" text-anchor="middle" fill="#fff">'
                    f'{_esc(name)}</text>'
                )
                svg.append(
                    f'<text x="{x0 + w / 2:.1f}" y="{height + 11}" '
                    f'font-size="8" text-anchor="middle" fill="#666">'
                    f'{100 * share:.1f}%</text>'
                )
            x0 += w
        svg.append("</svg>")
        parts.append('<div class="spark"><span class="name">virtual '
                     'cycles by subsystem</span>' + "".join(svg)
                     + "</div>")
    opcodes = sorted((prof.get("opcodes") or {}).items(),
                     key=lambda item: -item[1]["cycles"])[:12]
    if opcodes:
        parts.extend(["<table>", "<tr><th>opcode</th><th>count</th>"
                      "<th>cycles</th><th>share</th></tr>"])
        for name, row in opcodes:
            share = 100 * row["cycles"] / total if total else 0.0
            parts.append(
                f'<tr><td><code>{_esc(name)}</code></td>'
                f'<td class="num">{row["count"]:,}</td>'
                f'<td class="num">{row["cycles"]:,.0f}</td>'
                f'<td class="num">{share:.1f}%</td></tr>'
            )
        parts.append("</table>")
    blocks = (prof.get("blocks") or [])[:12]
    if blocks:
        parts.extend(["<table>", "<tr><th>basic block</th>"
                      "<th>runs</th><th>instructions</th>"
                      "<th>cycles</th><th>share</th></tr>"])
        for row in blocks:
            share = 100 * row["cycles"] / total if total else 0.0
            parts.append(
                f'<tr><td><code>{_esc(row["start"])}–'
                f'{_esc(row["end"])}</code></td>'
                f'<td class="num">{row["count"]:,}</td>'
                f'<td class="num">{row["instructions"]:,}</td>'
                f'<td class="num">{row["cycles"]:,.0f}</td>'
                f'<td class="num">{share:.1f}%</td></tr>'
            )
        parts.append("</table>")
    return parts


def _cells_table(manifest):
    cells = manifest.get("cells") or []
    if not cells:
        return []
    metrics = manifest.get("metrics") or {}
    parts = ["<h2>Cells</h2>", "<table>",
             "<tr><th>cell</th><th>seed</th><th>status</th>"
             "<th>metrics</th></tr>"]
    for cell in cells:
        status = cell.get("status", "?")
        snapshot = metrics.get(cell["key"])
        picks = metric_headline(snapshot) if snapshot else []
        rendered = " ".join(f"{label}={text}" for label, text in picks) \
            or "—"
        error = cell.get("error")
        if error:
            rendered = _esc(error)
        parts.append(
            f'<tr><td>{_esc(cell["key"])}</td>'
            f'<td><code>{_esc(cell.get("seed") or "—")}</code></td>'
            f'<td class="status-{_esc(status)}">{_esc(status)}</td>'
            f'<td>{rendered}</td></tr>'
        )
    parts.append("</table>")
    return parts


def _config_table(manifest):
    config = manifest.get("config") or {}
    parts = ["<h2>Config</h2>", "<table>",
             "<tr><th>knob</th><th>value</th></tr>"]
    for knob in sorted(config):
        parts.append(f"<tr><td>{_esc(knob)}</td>"
                     f"<td><code>{_esc(config[knob])}</code></td></tr>")
    parts.append("</table>")
    return parts


def _provenance(manifest):
    traces = manifest.get("traces") or {}
    timing = manifest.get("timing") or {}
    rows = [
        ("run id", manifest.get("run_id")),
        ("config hash", manifest.get("config_hash")),
        ("git sha", manifest.get("git_sha") or "n/a"),
        ("wall time", f"{timing.get('wall_s', 'n/a')} s"),
    ]
    for label in sorted(traces):
        info = traces[label]
        rows.append((f"trace [{label}]",
                     f"{info.get('path')} sha256={info.get('sha256')}"))
    parts = ["<h2>Provenance</h2>", "<table>",
             "<tr><th>field</th><th>value</th></tr>"]
    for field, value in rows:
        parts.append(f"<tr><td>{_esc(field)}</td>"
                     f"<td><code>{_esc(value)}</code></td></tr>")
    parts.append("</table>")
    return parts


def render_html(manifest, checks=None, profile=None):
    """One run manifest -> a complete standalone HTML document.

    *checks* (from :func:`repro.obs.gate.check_headlines`) colours the
    headline tiles with their band verdicts when provided.
    """
    checks_by_headline = {c["headline"]: c for c in checks or []}
    title = (f"{manifest.get('experiment', '?')} — "
             f"{manifest.get('run_id', '?')}")
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>repro run {_esc(manifest.get('run_id', '?'))}</h1>",
        f'<p class="meta">experiment <code>'
        f'{_esc(manifest.get("experiment"))}</code> · seed '
        f'<code>{_esc(manifest.get("seed"))}</code>'
        + (f' · gated against profile <code>{_esc(profile)}</code>'
           if profile else "") + "</p>",
    ]
    if manifest.get("partial"):
        parts.append('<p class="partial">partial run — one or more '
                     "cells failed; numbers cover completed cells "
                     "only</p>")
    parts.append("<h2>Headlines</h2>")
    parts.extend(_tiles(manifest, checks_by_headline))
    parts.extend(_series_section(manifest))
    parts.extend(_pipeline_section(manifest))
    parts.extend(_hotspots_section(manifest))
    parts.extend(_cells_table(manifest))
    parts.extend(_config_table(manifest))
    parts.extend(_provenance(manifest))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
