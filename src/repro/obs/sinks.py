"""Trace sinks: deterministic JSONL files and Chrome trace-event JSON.

Both sinks serialise with sorted keys and fixed separators, so two
traces with equal records produce byte-identical files — the property
the golden-trace tests (and the ``--jobs N`` / resume acceptance
criteria) assert on the *files*, not just the in-memory lists.

The Chrome export follows the Trace Event Format understood by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: one
``pid`` per experiment cell (named via ``M`` metadata records), one
``tid`` per virtual clock, ``B``/``E``/``X``/``i`` phases carried over
verbatim.
"""

import json
import os

from repro.atomicio import atomic_write_text

#: JSONL header tag; bump on incompatible record-shape changes.
TRACE_FORMAT = "repro-trace/1"

_REQUIRED = (("ph", str), ("name", str), ("cat", str),
             ("ts", int), ("clk", int), ("seq", int))
_PHASES = ("B", "E", "X", "i")
_OPTIONAL = ("dur", "args", "cell")


class TraceSchemaError(ValueError):
    """A JSONL line that is not a valid repro-trace record."""


def _dumps(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def validate_record(record, line=None):
    """Raise :class:`TraceSchemaError` unless *record* is well-formed."""
    where = f" (line {line})" if line is not None else ""
    if not isinstance(record, dict):
        raise TraceSchemaError(f"record is not an object{where}")
    for field, kind in _REQUIRED:
        if field not in record:
            raise TraceSchemaError(f"missing field {field!r}{where}")
        if not isinstance(record[field], kind):
            raise TraceSchemaError(
                f"field {field!r} is {type(record[field]).__name__}, "
                f"expected {kind.__name__}{where}"
            )
    if record["ph"] not in _PHASES:
        raise TraceSchemaError(f"unknown phase {record['ph']!r}{where}")
    if record["ph"] == "X" and not isinstance(record.get("dur"), int):
        raise TraceSchemaError(f"X record without integer dur{where}")
    extra = set(record) - {f for f, _ in _REQUIRED} - set(_OPTIONAL)
    if extra:
        raise TraceSchemaError(f"unknown fields {sorted(extra)}{where}")


def trace_jsonl(experiment, cell_traces):
    """The JSONL sink text: one header line, then one line per record.

    *cell_traces* maps cell key -> record list, in declaration order
    (the order :func:`repro.exec.execute_plan` fills it in).
    """
    lines = [_dumps({
        "format": TRACE_FORMAT,
        "experiment": experiment,
        "cells": list(cell_traces),
    })]
    for key, records in cell_traces.items():
        for record in records:
            lines.append(_dumps({**record, "cell": key}))
    return "\n".join(lines) + "\n"


def read_jsonl(path):
    """Parse + schema-check a JSONL sink; returns (header, records)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise TraceSchemaError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise TraceSchemaError(
            f"{path}: unknown format {header.get('format')!r}"
        )
    records = []
    for number, line in enumerate(lines[1:], start=2):
        record = json.loads(line)
        validate_record(record, line=number)
        records.append(record)
    return header, records


def chrome_trace(cell_traces, experiment=None):
    """Records -> Chrome trace-event JSON object (Perfetto-loadable)."""
    events = []
    for pid, (key, records) in enumerate(cell_traces.items(), start=1):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": key}})
        for record in records:
            event = {
                "name": record["name"], "cat": record["cat"],
                "ph": record["ph"], "pid": pid, "tid": record["clk"],
                "ts": record["ts"],
            }
            if record["ph"] == "X":
                event["dur"] = record.get("dur", 0)
            elif record["ph"] == "i":
                event["s"] = "t"
            if "args" in record:
                event["args"] = record["args"]
            events.append(event)
    other = {"generator": "repro.obs", "format": TRACE_FORMAT}
    if experiment is not None:
        other["experiment"] = experiment
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": other,
    }


def read_chrome(path):
    """Parse a Chrome trace-event export back into (header, records).

    The chrome sink drops the global ``seq`` counter, so record order is
    only meaningful *within* a cell; ``seq`` is re-synthesised from file
    order.  Summaries over the round-tripped records match the JSONL
    originals (same spans, same virtual durations).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise TraceSchemaError(f"{path}: not a Chrome trace-event file")
    other = payload.get("otherData") or {}
    if other.get("format") not in (None, TRACE_FORMAT):
        raise TraceSchemaError(
            f"{path}: unknown format {other.get('format')!r}"
        )
    cell_by_pid = {}
    records = []
    for event in payload["traceEvents"]:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "process_name":
                cell_by_pid[event["pid"]] = event["args"]["name"]
            continue
        record = {
            "ph": ph,
            "name": event["name"],
            "cat": event.get("cat", "?"),
            "ts": event["ts"],
            "clk": event.get("tid", 0),
            "seq": len(records),
        }
        cell = cell_by_pid.get(event.get("pid"))
        if cell is not None:
            record["cell"] = cell
        if ph == "X":
            record["dur"] = event.get("dur", 0)
        if "args" in event:
            record["args"] = event["args"]
        validate_record(record)
        records.append(record)
    header = {
        "format": TRACE_FORMAT,
        "experiment": other.get("experiment", "?"),
        "cells": list(cell_by_pid.values()),
    }
    return header, records


def read_trace(path):
    """Read either sink flavour: ``*.chrome.json`` dispatches to
    :func:`read_chrome`, anything else to :func:`read_jsonl`."""
    if str(path).endswith(".chrome.json"):
        return read_chrome(path)
    return read_jsonl(path)


def write_trace_files(out_dir, experiment, cell_traces):
    """Write both sinks atomically; returns (jsonl_path, chrome_path)."""
    os.makedirs(out_dir, exist_ok=True)
    jsonl_path = os.path.join(out_dir, f"{experiment}.trace.jsonl")
    chrome_path = os.path.join(out_dir, f"{experiment}.chrome.json")
    atomic_write_text(jsonl_path, trace_jsonl(experiment, cell_traces))
    atomic_write_text(
        chrome_path,
        _dumps(chrome_trace(cell_traces, experiment=experiment)) + "\n",
    )
    return jsonl_path, chrome_path
