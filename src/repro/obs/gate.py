"""Headline regression gate: manifest vs committed expectation bands.

``expectations.json`` (repo root) commits the paper's headline bands —
offline-HID post-evasion accuracy ≤ 55 %, benign-vs-attack baseline
≥ 80 %, IPC overhead ≤ a few percent — per *profile*: the ``quick``
profile holds for the scaled-down CI runs, ``full`` for the paper-scale
reproductions.  ``repro gate RUN`` checks a run manifest's recorded
headlines against its experiment's bands and exits non-zero on any
regression, so CI fails the moment a change silently drifts a number
the paper's claims live on.
"""

import json

from repro.core.reporting import format_table

#: Expectation-file format tag; bump on incompatible shape changes.
EXPECTATIONS_FORMAT = "repro-expectations/1"

#: Default expectations file, resolved relative to the working dir.
DEFAULT_EXPECTATIONS = "expectations.json"

#: Default profile: the bands CI's quick runs are gated against.
DEFAULT_PROFILE = "quick"


class ExpectationsError(ValueError):
    """An expectations file that cannot gate anything."""


#: Reserved key inside an experiment section: per-microarchitecture
#: band overlays, ``{"uarch": {"ooo": {headline: band, ...}}}``.
UARCH_KEY = "uarch"


def _check_band(path, where, headline, band):
    if not isinstance(band, dict) or not ("min" in band or "max" in band):
        raise ExpectationsError(
            f"{path}: band {where}/{headline} needs a 'min' and/or 'max'"
        )


def load_expectations(path):
    """Parse + sanity-check an expectations file.

    Two shapes per experiment section are accepted: the flat (legacy)
    ``{headline: band}`` dict, optionally carrying a reserved ``uarch``
    key with per-microarchitecture overlays —
    ``{"uarch": {"ooo": {headline: band}}}``.  Validation errors name
    the offending key path.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != EXPECTATIONS_FORMAT:
        raise ExpectationsError(
            f"{path}: unknown format {payload.get('format')!r} "
            f"(expected {EXPECTATIONS_FORMAT})"
        )
    profiles = payload.get("profiles")
    if not isinstance(profiles, dict) or not profiles:
        raise ExpectationsError(f"{path}: no profiles defined")
    for profile_name, experiments in profiles.items():
        for experiment, bands in experiments.items():
            where = f"{profile_name}/{experiment}"
            for headline, band in bands.items():
                if headline == UARCH_KEY:
                    if not isinstance(band, dict):
                        raise ExpectationsError(
                            f"{path}: {where}/{UARCH_KEY} must map "
                            f"microarchitecture names to band dicts"
                        )
                    for uarch_name, overlay in band.items():
                        if not isinstance(overlay, dict):
                            raise ExpectationsError(
                                f"{path}: {where}/{UARCH_KEY}/"
                                f"{uarch_name} must be a "
                                f"{{headline: band}} dict"
                            )
                        for name, uarch_band in overlay.items():
                            _check_band(
                                path,
                                f"{where}/{UARCH_KEY}/{uarch_name}",
                                name, uarch_band,
                            )
                    continue
                _check_band(path, where, headline, band)
    return payload


def bands_for(expectations, experiment, profile=DEFAULT_PROFILE,
              uarch=None):
    """The experiment's band dict for one profile (and microarch).

    The flat section is the baseline; when *uarch* names an entry in the
    section's ``uarch`` overlay, those bands replace the flat ones key
    by key — so a legacy flat file gates every microarchitecture the
    same way, and a per-uarch file overrides only the headlines whose
    expected numbers genuinely differ per core.

    Raises :class:`ExpectationsError` when the profile or experiment is
    not covered — a gate with nothing to check must fail loudly, not
    silently pass a typo.
    """
    profiles = expectations["profiles"]
    if profile not in profiles:
        raise ExpectationsError(
            f"no profile {profile!r} (have {sorted(profiles)})"
        )
    experiments = profiles[profile]
    if experiment not in experiments:
        raise ExpectationsError(
            f"profile {profile!r} has no bands for experiment "
            f"{experiment!r} (have {sorted(experiments)})"
        )
    section = experiments[experiment]
    bands = {name: band for name, band in section.items()
             if name != UARCH_KEY}
    overlays = section.get(UARCH_KEY) or {}
    if uarch is not None and uarch in overlays:
        bands.update(overlays[uarch])
    return bands


def check_headlines(headlines, bands):
    """Evaluate every band; returns a list of check dicts.

    A check fails when the headline is outside its band *or* missing
    from the manifest (an experiment that stopped producing a gated
    number is itself a regression).
    """
    checks = []
    for headline in sorted(bands):
        band = bands[headline]
        value = headlines.get(headline)
        check = {"headline": headline, "value": value, "band": band}
        if value is None:
            check["ok"] = False
            check["reason"] = "headline missing from manifest"
        else:
            failures = []
            if "min" in band and value < band["min"]:
                failures.append(f"{value:.4f} < min {band['min']}")
            if "max" in band and value > band["max"]:
                failures.append(f"{value:.4f} > max {band['max']}")
            check["ok"] = not failures
            if failures:
                check["reason"] = "; ".join(failures)
        checks.append(check)
    return checks


def gate_passed(checks):
    return all(check["ok"] for check in checks)


def _band_text(band):
    parts = []
    if "min" in band:
        parts.append(f">= {band['min']}")
    if "max" in band:
        parts.append(f"<= {band['max']}")
    return " and ".join(parts)


def format_gate(manifest, profile, checks):
    """Render the gate verdict table."""
    rows = []
    for check in checks:
        value = check["value"]
        rows.append([
            check["headline"],
            "n/a" if value is None else f"{value:.4f}",
            _band_text(check["band"]),
            "ok" if check["ok"] else f"FAIL ({check['reason']})",
        ])
    verdict = "PASS" if gate_passed(checks) else "REGRESSION"
    title = (f"gate [{verdict}] — {manifest['experiment']} run "
             f"{manifest['run_id']} vs profile {profile!r}")
    lines = [format_table(["headline", "value", "band", "status"],
                          rows, title=title)]
    if manifest.get("partial"):
        lines.append("note: manifest records a PARTIAL run — gated "
                     "headlines cover completed cells only")
    return "\n".join(lines)
