"""Cross-run diffing: knob-by-knob, metric-by-metric, span-by-span.

Powers ``repro compare RUN_A RUN_B``.  Two run manifests are diffed on
their non-volatile sections (config, headlines, cell statuses, per-cell
metrics, trace digests); when both runs also have their JSONL trace
sinks on disk, the **first divergent span** of each differing cell is
localised by walking the two record streams in ``seq`` order — pinning
a behavioural change to a subsystem (``cpu``/``cache``/``attack``/
``hid``/...) instead of "the figure's numbers moved".

Two same-config, same-seed runs diff empty by construction (the
determinism contract of ``repro.exec`` + ``repro.obs``); anything that
shows up here is a real behavioural or configuration change.
"""

from repro.core.reporting import format_table
from repro.obs.ledger import strip_volatile


def _flatten(value, prefix=""):
    """Flatten nested dicts/lists into dotted leaf paths."""
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            out.update(_flatten(value[key], f"{prefix}{key}."))
        return out
    if isinstance(value, (list, tuple)):
        out = {}
        for index, item in enumerate(value):
            out.update(_flatten(item, f"{prefix}{index}."))
        return out
    return {prefix[:-1]: value}


def _diff_flat(a, b):
    """Sorted (path, a-value, b-value) triples where the leaves differ.

    Missing leaves render as the sentinel string ``"<absent>"``.
    """
    flat_a, flat_b = _flatten(a), _flatten(b)
    rows = []
    for path in sorted(set(flat_a) | set(flat_b)):
        va = flat_a.get(path, "<absent>")
        vb = flat_b.get(path, "<absent>")
        if va != vb:
            rows.append((path, va, vb))
    return rows


def diff_manifests(a, b):
    """Structured diff of two manifests' non-volatile sections.

    Returns a dict of section name -> list of (path, a, b) rows; empty
    lists mean the section matches.  The ``identity`` section flags
    cross-experiment compares (legal, but every knob will differ).
    """
    a, b = strip_volatile(a), strip_volatile(b)
    sections = {}
    sections["identity"] = _diff_flat(
        {"experiment": a.get("experiment"),
         "format": a.get("format")},
        {"experiment": b.get("experiment"),
         "format": b.get("format")},
    )
    sections["config"] = _diff_flat(a.get("config", {}),
                                    b.get("config", {}))
    sections["headlines"] = _diff_flat(a.get("headlines", {}),
                                       b.get("headlines", {}))
    cells_a = {cell["key"]: {k: v for k, v in cell.items() if k != "key"}
               for cell in a.get("cells", [])}
    cells_b = {cell["key"]: {k: v for k, v in cell.items() if k != "key"}
               for cell in b.get("cells", [])}
    sections["cells"] = _diff_flat(cells_a, cells_b)
    sections["metrics"] = _diff_flat(a.get("metrics", {}),
                                     b.get("metrics", {}))
    # Trace identity is the *digest*; the sink's on-disk location is a
    # property of where the ledger lives, not of the run.
    sections["traces"] = _diff_flat(
        {label: info.get("sha256")
         for label, info in (a.get("traces") or {}).items()},
        {label: info.get("sha256")
         for label, info in (b.get("traces") or {}).items()},
    )
    sections["git"] = _diff_flat({"sha": a.get("git_sha")},
                                 {"sha": b.get("git_sha")})
    return sections


def diff_count(sections):
    """Total differing leaves across every section."""
    return sum(len(rows) for rows in sections.values())


def first_divergence(records_a, records_b):
    """The first position where two record streams disagree.

    Records are compared whole (they are deterministic dicts); returns
    ``None`` for identical streams, else a dict naming the divergent
    record's subsystem (its trace category), name, and seq — plus which
    side is longer when one stream is a strict prefix of the other.
    """
    for index, (ra, rb) in enumerate(zip(records_a, records_b)):
        if ra != rb:
            desc_a, desc_b = _describe(ra), _describe(rb)
            if desc_a == desc_b:
                # The headline fields match; the divergence is in the
                # span payload — show it, or the records look equal.
                desc_a += f" args={ra.get('args')}"
                desc_b += f" args={rb.get('args')}"
            return {
                "index": index,
                "seq": ra.get("seq", index),
                "subsystem": ra.get("cat", "?"),
                "name": ra.get("name", "?"),
                "a": desc_a,
                "b": desc_b,
            }
    if len(records_a) != len(records_b):
        longer = records_a if len(records_a) > len(records_b) else records_b
        index = min(len(records_a), len(records_b))
        record = longer[index]
        return {
            "index": index,
            "seq": record.get("seq", index),
            "subsystem": record.get("cat", "?"),
            "name": record.get("name", "?"),
            "a": (_describe(record)
                  if longer is records_a else "<end of trace>"),
            "b": (_describe(record)
                  if longer is records_b else "<end of trace>"),
        }
    return None


def _describe(record):
    text = (f"{record.get('ph')} {record.get('name')} "
            f"ts={record.get('ts')} clk={record.get('clk')}")
    if "dur" in record:
        text += f" dur={record['dur']}"
    return text


def _by_cell(records):
    out = {}
    for record in records:
        out.setdefault(record.get("cell"), []).append(record)
    for cell_records in out.values():
        cell_records.sort(key=lambda r: r.get("seq", 0))
    return out


def localize_trace_divergence(header_a, records_a, header_b, records_b):
    """Per-cell first-divergent-span report for two JSONL traces.

    Walks each cell's record stream (in global ``seq`` order) and
    reports the earliest divergence; cells present in only one trace
    are reported structurally.  Returns a list of dicts, one per
    divergent cell, in trace-A declaration order.
    """
    cells_a = _by_cell(records_a)
    cells_b = _by_cell(records_b)
    order = list(header_a.get("cells", [])) or list(cells_a)
    for key in header_b.get("cells", []) or list(cells_b):
        if key not in order:
            order.append(key)

    findings = []
    for key in order:
        in_a, in_b = key in cells_a, key in cells_b
        if not (in_a and in_b):
            findings.append({
                "cell": key,
                "missing_from": "A" if not in_a else "B",
            })
            continue
        divergence = first_divergence(cells_a[key], cells_b[key])
        if divergence is not None:
            findings.append({"cell": key, **divergence})
    return findings


def format_compare(label_a, label_b, sections, trace_findings=None,
                   max_rows=20):
    """Render a compare report; empty diff renders a single line.

    Each section's table is capped at *max_rows* rows (a different-seed
    compare differs in every histogram bucket; the count line stays
    honest about what was elided).
    """
    total = diff_count(sections)
    lines = [f"compare: {label_a} vs {label_b} — "
             f"{total} differing field(s)"]
    if total == 0:
        lines.append("runs are identical (non-volatile sections)")
    for section in ("identity", "config", "headlines", "cells",
                    "metrics", "traces", "git"):
        rows = sections.get(section) or []
        if not rows:
            continue
        rendered = [
            [path, _short(va), _short(vb)]
            for path, va, vb in rows[:max_rows]
        ]
        lines.append(format_table(
            ["field", "A", "B"], rendered,
            title=f"{section}: {len(rows)} difference(s)",
        ))
        if len(rows) > max_rows:
            lines.append(f"  … {len(rows) - max_rows} more "
                         f"{section} difference(s) elided")
    for finding in trace_findings or []:
        if "missing_from" in finding:
            lines.append(
                f"trace: cell {finding['cell']!r} is missing from run "
                f"{finding['missing_from']}"
            )
        else:
            lines.append(
                f"trace: cell {finding['cell']!r} first diverges in "
                f"subsystem [{finding['subsystem']}] at span "
                f"{finding['name']!r} (seq {finding['seq']}):\n"
                f"  A: {finding['a']}\n  B: {finding['b']}"
            )
    return "\n".join(lines)


def _short(value, limit=48):
    text = str(value)
    if isinstance(value, float):
        text = f"{value:.6g}"
    return text if len(text) <= limit else text[:limit - 1] + "…"
