"""Deterministic tracing: virtual-time spans and events.

A :class:`Tracer` records nested spans (``ph="B"``/``"E"`` pairs or
``"X"`` complete events) and point events (``ph="i"``) into an
in-memory list.  Timestamps are **virtual**: every record carries a
clock id (``clk``) and a timestamp (``ts``) read from a registered
clock callable — CPU cycle counters in practice, never wall clock — so
a trace is a pure function of the cell's seed and knobs.  Serial,
parallel, and resumed runs of the same cell therefore produce
byte-identical traces (the contract tested in ``tests/obs``).

The disabled path is :data:`NULL`, a singleton whose ``channel()``
returns ``None``.  Instrumented components bind their channels once at
construction and guard every emission site with ``if ch is not None``;
those guards live only on cold sub-paths (mispredict, cache miss,
syscall, ...), so the hot CPU step loop is untouched when tracing is
off.

Records are plain dicts shaped like Chrome trace-event phases::

    {"ph": "B"|"E"|"X"|"i", "name": ..., "cat": ...,
     "ts": <int>, "clk": <int>, "seq": <int>,
     "dur": <int, X only>, "args": {...}}   # args optional

``clk`` 0 is the tracer's own sequence clock (orchestration records
that have no CPU to charge); clocks 1.. are registered per simulated
CPU.  ``seq`` is the global emission ordinal, which makes the record
stream totally ordered even across clocks.
"""

import contextlib
import dataclasses

from repro.obs.metrics import MetricsRegistry

#: Every category an instrumentation site may use.  The ``ooo.*``
#: categories carry the Tomasulo core's pipeline spans (dispatch/commit
#: stalls, squash recoveries, LSQ pressure) and are off unless asked
#: for — they are chatty at paper scale.
CATEGORIES = ("cpu", "cache", "kernel", "attack", "hid", "exec",
              "ooo.dispatch", "ooo.commit", "ooo.squash", "ooo.lsq")

#: Default per-cell record cap; excess emissions are counted, not kept.
DEFAULT_MAX_RECORDS = 200_000


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """Picklable tracing knobs, shipped to pool workers per cell.

    ``categories`` is the enabled subset of :data:`CATEGORIES` (``None``
    means all); ``max_records`` bounds per-cell memory — a saturated
    trace keeps its first ``max_records`` records and counts the rest
    in the ``trace.dropped`` metric.
    """

    categories: tuple = None
    max_records: int = DEFAULT_MAX_RECORDS

    def wants(self, category):
        return self.categories is None or category in self.categories


def parse_filter(spec):
    """``--trace-filter cpu,cache`` -> validated category tuple.

    ``None``/empty means "all categories".
    """
    if not spec:
        return None
    names = tuple(
        part.strip() for part in str(spec).split(",") if part.strip()
    )
    unknown = sorted(set(names) - set(CATEGORIES))
    if unknown:
        raise ValueError(
            f"unknown trace categories {unknown}; "
            f"choose from {', '.join(CATEGORIES)}"
        )
    return names


class TraceChannel:
    """One category's emission handle, bound to one virtual clock.

    Channels are handed out by :meth:`Tracer.channel` only when the
    category is enabled; a disabled category yields ``None`` so call
    sites pay a single ``is not None`` check and nothing else.
    """

    __slots__ = ("_tracer", "_cat", "_clk", "_fn")

    def __init__(self, tracer, category, clk, fn):
        self._tracer = tracer
        self._cat = category
        self._clk = clk
        self._fn = fn

    def now(self):
        """Current virtual time on this channel's clock."""
        if self._fn is None:
            return self._tracer._seq
        return int(self._fn())

    def event(self, name, **args):
        """Point event (``ph="i"``) at the current virtual time."""
        self._tracer._emit("i", name, self._cat, self.now(), self._clk,
                           args or None)

    def complete(self, name, ts0, **args):
        """Complete span (``ph="X"``) from *ts0* to now."""
        ts1 = self.now()
        self._tracer._emit("X", name, self._cat, ts0, self._clk,
                           args or None, dur=ts1 - ts0)


class Tracer:
    """Recording tracer: one per experiment cell."""

    enabled = True

    def __init__(self, config=None):
        self.config = config or TraceConfig()
        self.records = []
        self.metrics = MetricsRegistry()
        self.dropped = 0
        self._seq = 0
        self._clock_fns = []

    # -- clock + channel registry ------------------------------------

    def register_clock(self, fn):
        """Register a virtual clock callable; returns its ``clk`` id."""
        self._clock_fns.append(fn)
        return len(self._clock_fns)

    def channel(self, category, clk=0):
        """A :class:`TraceChannel`, or ``None`` if *category* is off."""
        if not self.config.wants(category):
            return None
        fn = self._clock_fns[clk - 1] if clk else None
        return TraceChannel(self, category, clk, fn)

    # -- record emission ---------------------------------------------

    def _emit(self, ph, name, cat, ts, clk, args, dur=None):
        self.metrics.inc("events." + name)
        seq = self._seq
        self._seq = seq + 1
        if len(self.records) >= self.config.max_records:
            self.dropped += 1
            return
        record = {"ph": ph, "name": name, "cat": cat,
                  "ts": ts, "clk": clk, "seq": seq}
        if dur is not None:
            record["dur"] = dur
        if args:
            record["args"] = args
        self.records.append(record)

    # -- tracer-level (sequence-clocked) emission --------------------

    def event(self, name, category, **args):
        """Orchestration point event on the sequence clock."""
        if self.config.wants(category):
            self._emit("i", name, category, self._seq, 0, args or None)

    def begin(self, name, category, **args):
        if self.config.wants(category):
            self._emit("B", name, category, self._seq, 0, args or None)

    def end(self, name, category, **args):
        if self.config.wants(category):
            self._emit("E", name, category, self._seq, 0, args or None)

    @contextlib.contextmanager
    def span(self, name, category, **args):
        """``B``/``E`` pair around a block; the ``E`` survives exceptions."""
        self.begin(name, category, **args)
        try:
            yield
        finally:
            self.end(name, category)

    # -- lifecycle ---------------------------------------------------

    def finalize(self):
        """Fold clock totals and record counts into the metrics.

        Called once per cell after the workload ran: the summed final
        clock readings become the ``cpu.cycles`` gauge (total virtual
        time burned across every simulated CPU the cell built).
        """
        cycles = 0
        for fn in self._clock_fns:
            cycles += int(fn())
        if self._clock_fns:
            self.metrics.set_gauge("cpu.cycles", cycles)
        self.metrics.set_gauge("trace.records", len(self.records))
        self.metrics.set_gauge("trace.dropped", self.dropped)
        return self


class NullTracer:
    """The default no-op recorder.

    ``channel()`` returns ``None`` — components then skip binding
    entirely, so the disabled path costs one attribute check on cold
    sub-paths and *nothing* on the hot step loop.
    """

    enabled = False
    records = ()
    dropped = 0

    def register_clock(self, fn):
        return 0

    def channel(self, category, clk=0):
        return None

    def event(self, name, category, **args):
        pass

    def begin(self, name, category, **args):
        pass

    def end(self, name, category, **args):
        pass

    def span(self, name, category, **args):
        return contextlib.nullcontext()

    def finalize(self):
        return self


#: Shared no-op tracer; the bottom of the ambient stack.
NULL = NullTracer()

#: Ambient tracer stack: deep call sites (watchdog, attack stages,
#: profiler) resolve their tracer here instead of threading it through
#: a dozen signatures.  Per-process (cells in pool workers each
#: activate their own), never shared across threads in practice —
#: cells are single-threaded by construction.
_ACTIVE = [NULL]


def current_tracer():
    """The innermost active tracer (:data:`NULL` when tracing is off)."""
    return _ACTIVE[-1]


@contextlib.contextmanager
def activate(tracer):
    """Make *tracer* ambient for the duration of a ``with`` block."""
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()
