"""Fleet telemetry: the dist tier's event journal and live status view.

Three pieces, all dependency-free (stdlib only, like the rest of
``repro.obs``):

**The event journal** — an append-only JSONL file the dist server (and
the chaos harness) write fleet lifecycle events into: workers joining
and leaving, waves submitted and finished, leases expiring and their
cells requeueing, periodic worker/fleet stat samples, chaos kills and
partitions.  Every record is **virtual-time-stamped like the tracer**:
the writer stamps a monotonic ``vt`` (seconds since that writer's
journal opened, read through an injectable clock) plus a per-writer
``seq`` ordinal, so a journal replays in order per source even when
several processes append to the same file.  Appends are single
``os.write`` calls on an ``O_APPEND`` descriptor — whole lines land
atomically, which is what makes the multi-process chaos-harness +
server sharing safe without locks.

**The fleet snapshot** — a plain JSON-safe dict the server assembles on
demand (queue depth, in-flight leases, heartbeat ages, requeue/expiry
counters, cell-cache hit/miss/poisoned, cells/s per worker).
:func:`format_fleet_table` renders it for the ``repro status`` TTY
view; ``repro status --json`` prints it raw.

**The Prometheus exposition** — :func:`render_prometheus` turns a
snapshot into the text format external scrapers understand
(``# TYPE``-annotated ``repro_dist_*`` families), which the server
rewrites atomically to its ``--metrics-out`` file so a node_exporter
textfile collector or any file-scraping agent works with no new
dependencies.
"""

import json
import os
import time

from repro.core.reporting import format_table

#: Journal header tag; bump on incompatible record-shape changes.
JOURNAL_FORMAT = "repro-fleet/1"

#: Fields every journal event must carry (beyond kind-specific ones).
_REQUIRED = (("kind", str), ("vt", (int, float)), ("seq", int),
             ("source", str))

#: Prometheus metric family prefix.
METRICS_PREFIX = "repro_dist"


class JournalSchemaError(ValueError):
    """A journal line that is not a valid repro-fleet record."""


def _dumps(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class FleetJournal:
    """Append-only JSONL event journal (one writer instance per source).

    The first writer to touch the file writes the header line; later
    writers (the chaos harness appending kills into the server's
    journal) detect the non-empty file and skip it.  ``vt`` is seconds
    since this writer opened the journal, read from *clock* — the dist
    server passes the same injectable clock its lease tables use, so a
    fake-clock test journals deterministic timestamps.
    """

    def __init__(self, path, clock=time.monotonic, source="server"):
        self.path = str(path)
        self.clock = clock
        self.source = source
        self._origin = clock()
        self._seq = 0
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fd = os.open(self.path,
                           os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        if os.fstat(self._fd).st_size == 0:
            header = {"format": JOURNAL_FORMAT, "source": source,
                      "pid": os.getpid()}
            os.write(self._fd, (_dumps(header) + "\n").encode("utf-8"))

    def vt(self):
        """Seconds of virtual time since this writer opened the file."""
        return round(self.clock() - self._origin, 6)

    def append(self, kind, **fields):
        """Append one event; returns the record written."""
        record = {"kind": str(kind), "vt": self.vt(), "seq": self._seq,
                  "source": self.source}
        record.update(fields)
        self._seq += 1
        # One write() per line: O_APPEND makes concurrent appenders
        # (server + chaos harness) interleave whole records, never
        # torn halves.
        os.write(self._fd, (_dumps(record) + "\n").encode("utf-8"))
        return record

    def close(self):
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def validate_event(record, line=None):
    """Raise :class:`JournalSchemaError` unless *record* is well-formed."""
    where = f" (line {line})" if line is not None else ""
    if not isinstance(record, dict):
        raise JournalSchemaError(f"event is not an object{where}")
    for field, kind in _REQUIRED:
        if field not in record:
            raise JournalSchemaError(f"missing field {field!r}{where}")
        if not isinstance(record[field], kind) \
                or isinstance(record[field], bool):
            raise JournalSchemaError(
                f"field {field!r} is {type(record[field]).__name__}"
                f"{where}"
            )
    if not record["kind"]:
        raise JournalSchemaError(f"empty event kind{where}")
    if record["vt"] < 0 or record["seq"] < 0:
        raise JournalSchemaError(f"negative vt/seq{where}")


def read_journal(path):
    """Parse + schema-check a journal; returns ``(header, events)``.

    Events keep file order (the interleaved multi-writer order); use
    :func:`journal_totals` for per-kind counts.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise JournalSchemaError(f"{path}: empty journal")
    header = json.loads(lines[0])
    if header.get("format") != JOURNAL_FORMAT:
        raise JournalSchemaError(
            f"{path}: unknown format {header.get('format')!r}"
        )
    events = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        record = json.loads(line)
        validate_event(record, line=number)
        events.append(record)
    return header, events


def journal_totals(events):
    """Per-kind event counts, plus requeued-cell and expiry totals.

    ``counts`` maps event kind -> occurrences; ``requeued_cells`` sums
    the ``keys`` lists of ``lease.requeue`` events (the number the
    client-side progress stream counts too, which is what the dist
    progress tests reconcile against).
    """
    counts = {}
    requeued_cells = 0
    for event in events:
        kind = event["kind"]
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "lease.requeue":
            requeued_cells += len(event.get("keys") or [])
    return {
        "counts": counts,
        "requeued_cells": requeued_cells,
        "expiries": counts.get("lease.expired", 0),
    }


# ----------------------------------------------------------------------
# Prometheus-style text exposition
# ----------------------------------------------------------------------

def _metric_lines(name, kind, help_text, samples):
    """One metric family: HELP/TYPE annotations plus its samples.

    *samples* is ``[(labels_dict_or_None, value), ...]``; ``None``
    values are skipped (absent heartbeat ages and the like).
    """
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} {kind}"]
    emitted = False
    for labels, value in samples:
        if value is None:
            continue
        label_text = ""
        if labels:
            inner = ",".join(
                f'{key}="{str(val).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
                for key, val in sorted(labels.items())
            )
            label_text = "{" + inner + "}"
        if isinstance(value, bool):
            value = int(value)
        lines.append(f"{name}{label_text} {value}")
        emitted = True
    if not emitted:
        return []
    return lines


def render_prometheus(snapshot):
    """Fleet snapshot -> Prometheus text exposition (one string).

    Counter families come from the server's lifetime ``stats`` dict
    (requeues, expiries, hedges, degraded cells, bad frames, results),
    gauges from the live topology (workers, waves, queue depth,
    outstanding leases, heartbeat ages) and the per-wave cell-cache
    counters the submitting client reported.
    """
    server = snapshot.get("server") or {}
    stats = snapshot.get("stats") or {}
    workers = snapshot.get("workers") or {}
    waves = snapshot.get("waves") or {}
    cache = snapshot.get("cache") or {}
    p = METRICS_PREFIX
    parts = []

    for stat, help_text in (
        ("waves", "waves admitted since the server started"),
        ("batches", "batch leases dispatched"),
        ("results", "cell outcomes delivered to clients"),
        ("requeues", "cells requeued after lease revocations"),
        ("expiries", "leases revoked for missing heartbeats or lost workers"),
        ("hedges", "duplicate leases issued against stragglers"),
        ("degraded", "cells degraded to failed outcomes over budget"),
        ("bad_frames", "frames dropped for digest or header corruption"),
    ):
        parts.extend(_metric_lines(
            f"{p}_{stat}_total", "counter", help_text,
            [(None, stats.get(stat))],
        ))
    parts.extend(_metric_lines(
        f"{p}_workers", "gauge", "connected workers",
        [(None, server.get("workers"))],
    ))
    parts.extend(_metric_lines(
        f"{p}_waves_active", "gauge", "waves currently owned",
        [(None, server.get("waves"))],
    ))
    parts.extend(_metric_lines(
        f"{p}_queue_cells", "gauge", "cells queued across live waves",
        [(None, server.get("queued_cells"))],
    ))
    parts.extend(_metric_lines(
        f"{p}_leases_outstanding", "gauge",
        "batch leases currently held by workers",
        [(None, server.get("outstanding_leases"))],
    ))
    parts.extend(_metric_lines(
        f"{p}_uptime_seconds", "gauge", "server uptime",
        [(None, server.get("uptime_s"))],
    ))
    parts.extend(_metric_lines(
        f"{p}_worker_heartbeat_age_seconds", "gauge",
        "seconds since each worker's last heartbeat or message",
        [({"worker": wid}, info.get("heartbeat_age_s"))
         for wid, info in sorted(workers.items())],
    ))
    parts.extend(_metric_lines(
        f"{p}_worker_cells_total", "counter",
        "cells each worker reported computing",
        [({"worker": wid}, info.get("cells"))
         for wid, info in sorted(workers.items())],
    ))
    parts.extend(_metric_lines(
        f"{p}_worker_cells_per_second", "gauge",
        "per-worker observed throughput",
        [({"worker": wid}, info.get("cells_per_s"))
         for wid, info in sorted(workers.items())],
    ))
    parts.extend(_metric_lines(
        f"{p}_wave_done_cells", "gauge", "completed cells per live wave",
        [({"wave": wid}, info.get("done"))
         for wid, info in sorted(waves.items())],
    ))
    parts.extend(_metric_lines(
        f"{p}_cell_cache_events_total", "counter",
        "client-reported cell-cache counters",
        [({"event": event}, cache.get(event))
         for event in ("hits", "misses", "puts", "poisoned")],
    ))
    return "\n".join(parts) + "\n"


# ----------------------------------------------------------------------
# TTY rendering (repro status)
# ----------------------------------------------------------------------

def _age(value):
    return "—" if value is None else f"{value:.1f}s"


def format_fleet_table(snapshot):
    """Render one fleet snapshot as the ``repro status`` text view."""
    server = snapshot.get("server") or {}
    stats = snapshot.get("stats") or {}
    workers = snapshot.get("workers") or {}
    waves = snapshot.get("waves") or {}
    cache = snapshot.get("cache") or {}
    lines = [
        f"repro-dist {server.get('host', '?')}:{server.get('port', '?')}"
        f" — up {server.get('uptime_s', 0.0):.1f}s, "
        f"{server.get('workers', 0)} worker(s), "
        f"{server.get('waves', 0)} live wave(s)",
        f"  queue {server.get('queued_cells', 0)} cell(s), "
        f"{server.get('outstanding_leases', 0)} lease(s) in flight; "
        f"lifetime: {stats.get('results', 0)} results, "
        f"{stats.get('requeues', 0)} requeues, "
        f"{stats.get('expiries', 0)} expiries, "
        f"{stats.get('hedges', 0)} hedges, "
        f"{stats.get('degraded', 0)} degraded, "
        f"{stats.get('bad_frames', 0)} bad frame(s)",
    ]
    if cache:
        lines.append(
            f"  cell cache: {cache.get('hits', 0)} hit(s), "
            f"{cache.get('misses', 0)} miss(es), "
            f"{cache.get('poisoned', 0)} poisoned"
        )
    if workers:
        rows = []
        for wid in sorted(workers):
            info = workers[wid]
            rate = info.get("cells_per_s")
            rows.append([
                wid,
                "idle" if info.get("idle") else "busy",
                str(info.get("cells", 0)),
                str(info.get("batches", 0)),
                "—" if rate is None else f"{rate:.2f}",
                _age(info.get("heartbeat_age_s")),
            ])
        lines.append(format_table(
            ["worker", "state", "cells", "batches", "cells/s",
             "hb age"],
            rows, title="workers",
        ))
    if waves:
        rows = []
        for wid in sorted(waves):
            info = waves[wid]
            counters = info.get("counters") or {}
            rows.append([
                wid,
                f"{info.get('done', 0)}/{info.get('total', 0)}",
                str(info.get("queued_cells", 0)),
                str(info.get("outstanding", 0)),
                str(counters.get("requeues", 0)),
                _age(info.get("oldest_heartbeat_age_s")),
            ])
        lines.append(format_table(
            ["wave", "done", "queued", "leased", "requeues",
             "stalest hb"],
            rows, title="waves",
        ))
    return "\n".join(lines)
