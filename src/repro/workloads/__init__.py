"""Workloads: MiBench-style kernels, benign extras, vulnerable hosts."""

from repro.workloads.base import (
    OVERFLOW_BUFFER_BYTES,
    OVERFLOW_FILL_BYTES,
    OVERFLOW_FILL_BYTES_CANARY,
    Workload,
)
from repro.workloads.registry import (
    ALL_WORKLOADS,
    BENIGN_EXTRAS,
    FIG4_HOSTS,
    MIBENCH,
    get_workload,
    workload_names,
)

__all__ = [
    "OVERFLOW_BUFFER_BYTES",
    "OVERFLOW_FILL_BYTES",
    "OVERFLOW_FILL_BYTES_CANARY",
    "Workload",
    "ALL_WORKLOADS",
    "BENIGN_EXTRAS",
    "FIG4_HOSTS",
    "MIBENCH",
    "get_workload",
    "workload_names",
]
