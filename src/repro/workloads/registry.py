"""Registry of all workloads, by name and category."""

from repro.workloads.benign import (BROWSER, EDITOR, HID_DAEMON_HEAVY,
                                    HID_DAEMON_LIGHT)
from repro.workloads.mibench.adpcm import WORKLOAD as ADPCM
from repro.workloads.mibench.basicmath import WORKLOAD as BASICMATH
from repro.workloads.mibench.bitcount import WORKLOAD as BITCOUNT
from repro.workloads.mibench.crc32 import WORKLOAD as CRC32
from repro.workloads.mibench.dijkstra import WORKLOAD as DIJKSTRA
from repro.workloads.mibench.fft import WORKLOAD as FFT
from repro.workloads.mibench.patricia import WORKLOAD as PATRICIA
from repro.workloads.mibench.qsort import WORKLOAD as QSORT
from repro.workloads.mibench.rijndael import WORKLOAD as RIJNDAEL
from repro.workloads.mibench.sha import WORKLOAD as SHA
from repro.workloads.mibench.stringsearch import WORKLOAD as STRINGSEARCH
from repro.workloads.mibench.susan import WORKLOAD as SUSAN

MIBENCH = (BASICMATH, BITCOUNT, SHA, QSORT, CRC32, STRINGSEARCH, DIJKSTRA,
           FFT, RIJNDAEL, ADPCM, PATRICIA, SUSAN)
BENIGN_EXTRAS = (BROWSER, EDITOR)
HID_DAEMONS = (HID_DAEMON_LIGHT, HID_DAEMON_HEAVY)
ALL_WORKLOADS = MIBENCH + BENIGN_EXTRAS + HID_DAEMONS

_BY_NAME = {workload.name: workload for workload in ALL_WORKLOADS}

#: The four hosts Figure 4 reports (Spectre_1..4 legends; Table I names
#: "Math" first, so basicmath is host 1).
FIG4_HOSTS = ("basicmath", "bitcount", "sha", "qsort")


def get_workload(name):
    """Look up a workload by name; raises KeyError with suggestions."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_BY_NAME)}"
        )


def workload_names(category=None):
    """All workload names, optionally filtered by category."""
    return [
        workload.name
        for workload in ALL_WORKLOADS
        if category is None or workload.category == category
    ]
