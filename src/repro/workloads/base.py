"""Workload abstraction: MiBench-style kernels assembled three ways.

A workload contributes a ``workload_main`` routine (plus private data and
helpers).  It can be built:

* **standalone** — a plain ``main`` calls the kernel and exits;
* **hosted** — wrapped in the paper's Algorithm-1 victim: ``main`` first
  feeds ``argv[1]`` (with its *true binary length*, ``recv``-style) to a
  function that copies it into a 100-byte stack buffer without a bounds
  check, then runs the kernel.  This is the ROP attack's point of entry.
* **hosted with canary** — same, plus a stack-canary check (Section IV
  countermeasure): the copy still overflows, but the corrupted canary
  aborts the process before ``ret`` can reach the first gadget.

Builds are cached per (workload, variant, iterations).
"""

import dataclasses
import functools

from repro.kernel.loader import build_binary

#: Bytes of stack the Algorithm-1 victim exposes below the return address:
#: char buffer[100] plus the saved frame pointer.
OVERFLOW_BUFFER_BYTES = 100
OVERFLOW_FILL_BYTES = OVERFLOW_BUFFER_BYTES + 4  # buffer + saved fp
OVERFLOW_FILL_BYTES_CANARY = OVERFLOW_BUFFER_BYTES + 8  # + canary word

_STANDALONE_MAIN = r"""
.text
main:
    call workload_main
    mov  a0, rv
    call libc_exit
"""

# Algorithm 1 of the paper.  Frame of exploited_function at the copy:
#   sp+0   .. sp+99   char buffer[100]
#   sp+100 .. sp+103  saved fp
#   sp+104 .. sp+107  return address   <- the ROP chain lands here
_HOSTED_MAIN = r"""
.text
main:
    ; a0 = argc, a1 = argv, a2 = argv lengths
    push s0
    push s1
    mov  s0, a1
    mov  s1, a2
    slti t0, a0, 2
    bne  t0, zero, main_no_input
    lw   a0, 4(s0)          ; argv[1] (attacker-controlled bytes)
    lw   a1, 4(s1)          ; its true length
    call exploited_function
main_no_input:
    call workload_main
    pop  s1
    pop  s0
    mov  a0, rv
    call libc_exit

; void exploited_function(const char *input, int len)
;   char buffer[100]; memcpy(buffer, input, len);   // no bounds check
exploited_function:
    push fp
    addi sp, sp, -100
    mov  fp, sp
    li   t0, 0
ef_copy:
    bge  t0, a1, ef_done
    add  t1, a0, t0
    lb   t2, 0(t1)
    add  t3, fp, t0
    sb   t2, 0(t3)
    addi t0, t0, 1
    jmp  ef_copy
ef_done:
    addi sp, sp, 100
    pop  fp
    ret
"""

# Canary variant: frame gains a canary word between buffer and saved fp:
#   sp+0..99 buffer, sp+100..103 canary, sp+104..107 fp, sp+108..111 ra
_HOSTED_MAIN_CANARY_TEMPLATE = r"""
.data
__canary_value:
    .word {canary}

.text
main:
    push s0
    push s1
    mov  s0, a1
    mov  s1, a2
    slti t0, a0, 2
    bne  t0, zero, main_no_input
    lw   a0, 4(s0)
    lw   a1, 4(s1)
    call exploited_function
main_no_input:
    call workload_main
    pop  s1
    pop  s0
    mov  a0, rv
    call libc_exit

exploited_function:
    push fp
    la   t3, __canary_value
    lw   t3, 0(t3)
    push t3                  ; place the canary below the saved registers
    addi sp, sp, -100
    mov  fp, sp
    li   t0, 0
ef_copy:
    bge  t0, a1, ef_done
    add  t1, a0, t0
    lb   t2, 0(t1)
    add  t3, fp, t0
    sb   t2, 0(t3)
    addi t0, t0, 1
    jmp  ef_copy
ef_done:
    addi sp, sp, 100
    pop  t2                  ; reload what should still be the canary
    la   t3, __canary_value
    lw   t3, 0(t3)
    beq  t2, t3, ef_ok
    li   a0, 97              ; __stack_chk_fail: abort the process
    call libc_exit
ef_ok:
    pop  fp
    ret
"""


@dataclasses.dataclass(frozen=True)
class Workload:
    """A named kernel with a source generator.

    ``kernel_source`` is a callable ``(iterations) -> str`` producing
    assembly that defines ``workload_main``.
    """

    name: str
    description: str
    category: str  # "mibench" or "benign"
    kernel_source: callable
    default_iterations: int = 100

    def source(self, iterations=None, hosted=False, canary=0):
        iterations = iterations or self.default_iterations
        kernel = self.kernel_source(iterations)
        if canary:
            wrapper = _HOSTED_MAIN_CANARY_TEMPLATE.format(canary=canary)
        elif hosted:
            wrapper = _HOSTED_MAIN
        else:
            wrapper = _STANDALONE_MAIN
        return wrapper + "\n" + kernel

    def build(self, iterations=None, hosted=False, canary=0):
        """Assemble (and cache) a binary for this workload variant."""
        iterations = iterations or self.default_iterations
        return _build_cached(self, iterations, hosted, canary)

    def binary_path(self, hosted=False):
        """Conventional filesystem path for installs."""
        suffix = "_host" if hosted else ""
        return f"/bin/{self.name}{suffix}"


@functools.lru_cache(maxsize=256)
def _build_cached(workload, iterations, hosted, canary):
    variant = "host" if (hosted or canary) else "app"
    name = f"{workload.name}-{variant}-{iterations}"
    return build_binary(
        name,
        workload.source(iterations=iterations, hosted=hosted or bool(canary),
                        canary=canary),
    )
