"""MiBench ``susan`` (automotive suite), scaled.

SUSAN smoothing: for every interior pixel, compare the 3x3
neighbourhood against the centre with a brightness threshold and
average the "similar" neighbours (the USAN principle).  2-D strided
byte loads with a data-dependent branch per neighbour — the
image-processing profile of the original.
"""

from repro.workloads.base import Workload

IMAGE_DIM = 48  # 48x48 pixels
THRESHOLD = 27


def kernel_source(iterations):
    return f"""
; ---- susan: USAN-thresholded 3x3 smoothing over {IMAGE_DIM}x{IMAGE_DIM} ----
.data
su_ready:
    .word 0
su_image:
    .space {IMAGE_DIM * IMAGE_DIM}
su_output:
    .space {IMAGE_DIM * IMAGE_DIM}

.text
workload_main:
    push s0
    push s1

    ; ---- one-time image init: LCG "sensor noise" ----
    la   gp, su_ready
    lw   t0, 0(gp)
    bne  t0, zero, su_go
    li   t0, 1
    sw   t0, 0(gp)
    la   t1, su_image
    li   t2, {IMAGE_DIM * IMAGE_DIM}
    li   t3, 51515
su_fill:
    beq  t2, zero, su_go
    muli t3, t3, 1103515245
    addi t3, t3, 12345
    shri a3, t3, 13
    andi a3, a3, 0xFF
    sb   a3, 0(t1)
    addi t1, t1, 1
    addi t2, t2, -1
    jmp  su_fill

su_go:
    li   s1, {iterations}
su_outer:
    beq  s1, zero, su_done

    li   s0, 1                    ; row
su_row:
    slti t0, s0, {IMAGE_DIM - 1}
    beq  t0, zero, su_frame_done
    li   a2, 1                    ; col
su_col:
    slti t0, a2, {IMAGE_DIM - 1}
    beq  t0, zero, su_row_next

    ; centre pixel
    muli t1, s0, {IMAGE_DIM}
    add  t1, t1, a2
    la   t2, su_image
    add  t2, t2, t1               ; &img[row][col]
    lb   t3, 0(t2)                ; centre brightness

    ; accumulate similar neighbours: sum in gp, count in lr
    li   gp, 0
    li   lr, 0
    ; the 8 neighbour offsets, unrolled
    lb   a3, -{IMAGE_DIM + 1}(t2)
    call su_usan
    lb   a3, -{IMAGE_DIM}(t2)
    call su_usan
    lb   a3, -{IMAGE_DIM - 1}(t2)
    call su_usan
    lb   a3, -1(t2)
    call su_usan
    lb   a3, 1(t2)
    call su_usan
    lb   a3, {IMAGE_DIM - 1}(t2)
    call su_usan
    lb   a3, {IMAGE_DIM}(t2)
    call su_usan
    lb   a3, {IMAGE_DIM + 1}(t2)
    call su_usan

    ; output = count ? sum / count : centre
    beq  lr, zero, su_keep_centre
    div  t3, gp, lr
su_keep_centre:
    la   a0, su_output
    add  a0, a0, t1
    sb   t3, 0(a0)

    addi a2, a2, 1
    jmp  su_col
su_row_next:
    addi s0, s0, 1
    jmp  su_row

su_frame_done:
    addi s1, s1, -1
    jmp  su_outer

su_done:
    la   t0, su_output
    lb   rv, {IMAGE_DIM + 1}(t0)
    pop  s1
    pop  s0
    ret

; ---- usan helper: if |a3 - t3| < threshold: gp += a3; lr += 1 ---------
; clobbers t0 only; neighbours stream through here 8x per pixel
su_usan:
    sub  t0, a3, t3
    bge  t0, zero, su_usan_abs
    sub  t0, zero, t0
su_usan_abs:
    slti t0, t0, {THRESHOLD}
    beq  t0, zero, su_usan_out
    add  gp, gp, a3
    addi lr, lr, 1
su_usan_out:
    ret
"""


WORKLOAD = Workload(
    name="susan",
    description="MiBench susan: thresholded 3x3 smoothing, 2D strided",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=4,
)
