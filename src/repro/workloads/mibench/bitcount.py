"""MiBench ``bitcount``, scaled.

Counts set bits in a pseudorandom stream two ways, like the original's
multi-algorithm benchmark: Kernighan's ``x &= x - 1`` loop (pure ALU,
data-dependent branch) and a 16-entry nibble lookup table (adds a small,
cache-resident load stream).  The result is the ALU-dominated, highly
predictable profile that gives bitcount the highest IPC in Table I.

The paper's "Bitcount 50M" / "Bitcount 100M" rows map to ``iterations``
(one iteration = one 32-bit input processed by both algorithms).
"""

from repro.workloads.base import Workload


def kernel_source(iterations):
    return f"""
; ---- bitcount: Kernighan + nibble table ----
.data
bc_nibble_table:
    .word 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4

.text
workload_main:
    li   t0, {iterations}
    li   s0, 987654321        ; LCG state
    li   rv, 0
    la   a2, bc_nibble_table
bc_outer:
    beq  t0, zero, bc_done
    muli s0, s0, 1103515245
    addi s0, s0, 12345

    ; Kernighan popcount of the full word
    mov  t1, s0
bc_kern:
    beq  t1, zero, bc_kern_done
    addi t2, t1, -1
    and  t1, t1, t2
    addi rv, rv, 1
    jmp  bc_kern
bc_kern_done:

    ; nibble-table popcount of the low 16 bits (4 table loads)
    mov  t1, s0
    li   t3, 4
bc_table:
    beq  t3, zero, bc_table_done
    andi t2, t1, 0xF
    shli t2, t2, 2
    add  t2, t2, a2
    lw   s1, 0(t2)
    add  rv, rv, s1
    shri t1, t1, 4
    addi t3, t3, -1
    jmp  bc_table
bc_table_done:

    addi t0, t0, -1
    jmp  bc_outer
bc_done:
    ret
"""


WORKLOAD = Workload(
    name="bitcount",
    description="MiBench bitcount: Kernighan + table popcount, ALU heavy",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=500,
)
