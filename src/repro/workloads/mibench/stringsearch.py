"""MiBench ``stringsearch``, scaled.

Naive substring search of a 5-byte needle over a 2 KiB pseudorandom
haystack drawn from a 4-letter alphabet (so partial matches — and the
mispredicted inner-loop exits they cause — actually happen).  Byte
loads and short, data-dependent branches dominate, like the original.
"""

from repro.workloads.base import Workload

HAYSTACK_LEN = 2048


def kernel_source(iterations):
    return f"""
; ---- stringsearch: naive search over a {HAYSTACK_LEN}-byte haystack ----
.data
ss_needle:
    .asciiz "abcab"
ss_ready:
    .word 0
ss_haystack:
    .space {HAYSTACK_LEN + 1}

.text
workload_main:
    push s0
    push s1

    ; ---- one-time haystack init: chars 'a'..'d' from an LCG ----
    la   gp, ss_ready
    lw   t0, 0(gp)
    bne  t0, zero, ss_go
    li   t0, 1
    sw   t0, 0(gp)
    la   t1, ss_haystack
    li   t2, {HAYSTACK_LEN}
    li   t3, 31337
ss_fill:
    beq  t2, zero, ss_go
    muli t3, t3, 1103515245
    addi t3, t3, 12345
    shri a3, t3, 10
    andi a3, a3, 3
    addi a3, a3, 'a'
    sb   a3, 0(t1)
    addi t1, t1, 1
    addi t2, t2, -1
    jmp  ss_fill

ss_go:
    li   s1, {iterations}
    li   rv, 0                ; total match count
ss_outer:
    beq  s1, zero, ss_done
    la   s0, ss_haystack      ; candidate start pointer
    li   t0, {HAYSTACK_LEN - 5}  ; candidate starts left
ss_scan:
    beq  t0, zero, ss_next_iter
    ; compare needle at s0
    la   t1, ss_needle
    mov  t2, s0
ss_cmp:
    lb   t3, 0(t1)
    beq  t3, zero, ss_hit     ; end of needle: full match
    lb   a3, 0(t2)
    bne  t3, a3, ss_miss
    addi t1, t1, 1
    addi t2, t2, 1
    jmp  ss_cmp
ss_hit:
    addi rv, rv, 1
ss_miss:
    addi s0, s0, 1
    addi t0, t0, -1
    jmp  ss_scan
ss_next_iter:
    addi s1, s1, -1
    jmp  ss_outer

ss_done:
    pop  s1
    pop  s0
    ret
"""


WORKLOAD = Workload(
    name="stringsearch",
    description="MiBench stringsearch: naive matching, byte-load + branchy",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=40,
)
