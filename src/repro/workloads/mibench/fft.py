"""MiBench ``fft`` (telecomm suite), scaled.

Fixed-point (Q12) radix-2 butterfly network over 128 complex points:
seven stages of strided paired loads, multiply-shift twiddle scaling and
paired stores.  The twiddle table is pseudorandom rather than a true
cosine table (the *access pattern and operation mix* are what shape the
HPC signature, not the spectral correctness) and the bit-reversal
permutation is omitted; both substitutions are noted in DESIGN.md.
"""

from repro.workloads.base import Workload

N_POINTS = 128


def kernel_source(iterations):
    return f"""
; ---- fft: fixed-point radix-2 butterflies, N = {N_POINTS} ----
.data
fft_ready:
    .word 0
fft_re:
    .space {4 * N_POINTS}
fft_im:
    .space {4 * N_POINTS}
fft_tw:
    .space {4 * N_POINTS}

.text
workload_main:
    push s0
    push s1

    ; ---- one-time init of inputs and twiddle table ----
    la   gp, fft_ready
    lw   t0, 0(gp)
    bne  t0, zero, fft_go
    li   t0, 1
    sw   t0, 0(gp)
    li   t1, 0
    li   t3, 20202
fft_init:
    slti t0, t1, {N_POINTS}
    beq  t0, zero, fft_go
    muli t3, t3, 1103515245
    addi t3, t3, 12345
    shli t2, t1, 2
    la   a3, fft_re
    add  a3, a3, t2
    shri a2, t3, 20
    andi a2, a2, 0xFF
    sw   a2, 0(a3)
    la   a3, fft_im
    add  a3, a3, t2
    shri a2, t3, 12
    andi a2, a2, 0xFF
    sw   a2, 0(a3)
    la   a3, fft_tw
    add  a3, a3, t2
    shri a2, t3, 16
    andi a2, a2, 0x1FFF
    addi a2, a2, -4096        ; pseudo-cosine in [-4096, 4095] (Q12)
    sw   a2, 0(a3)
    addi t1, t1, 1
    jmp  fft_init

fft_go:
    la   gp, fft_ready        ; reuse as iteration cell
    li   t0, {iterations}
fft_iter_loop:
    beq  t0, zero, fft_all_done
    push t0

    li   s0, 2                ; len = 2
    li   a2, {N_POINTS // 2}  ; tstep = N / len
fft_stage:
    slti t2, s0, {N_POINTS + 1}
    beq  t2, zero, fft_iter_end
    shri t1, s0, 1            ; half = len / 2
    li   s1, 0                ; i = 0
fft_i_loop:
    slti t2, s1, {N_POINTS}
    beq  t2, zero, fft_i_done
    li   t0, 0                ; j = 0
fft_inner:
    bge  t0, t1, fft_inner_done
    mul  t2, t0, a2           ; twiddle index = (j * tstep) & (N-1)
    andi t2, t2, {N_POINTS - 1}
    shli t2, t2, 2
    la   t3, fft_tw
    add  t3, t3, t2
    lw   t3, 0(t3)            ; tw
    add  a3, s1, t0           ; a = i + j
    add  gp, a3, t1           ; b = a + half
    shli a3, a3, 2
    shli gp, gp, 2
    ; real butterfly
    la   lr, fft_re
    add  a0, lr, a3
    add  a1, lr, gp
    lw   lr, 0(a1)
    mul  lr, lr, t3
    srai lr, lr, 12           ; tr = (re[b] * tw) >> 12
    lw   t2, 0(a0)
    sub  rv, t2, lr
    sw   rv, 0(a1)            ; re[b] = re[a] - tr
    add  rv, t2, lr
    sw   rv, 0(a0)            ; re[a] = re[a] + tr
    ; imaginary butterfly
    la   lr, fft_im
    add  a0, lr, a3
    add  a1, lr, gp
    lw   lr, 0(a1)
    mul  lr, lr, t3
    srai lr, lr, 12           ; ti = (im[b] * tw) >> 12
    lw   t2, 0(a0)
    sub  rv, t2, lr
    sw   rv, 0(a1)
    add  rv, t2, lr
    sw   rv, 0(a0)
    addi t0, t0, 1
    jmp  fft_inner
fft_inner_done:
    add  s1, s1, s0           ; i += len
    jmp  fft_i_loop
fft_i_done:
    shli s0, s0, 1            ; len *= 2
    shri a2, a2, 1            ; tstep /= 2
    jmp  fft_stage

fft_iter_end:
    pop  t0
    addi t0, t0, -1
    jmp  fft_iter_loop

fft_all_done:
    la   t1, fft_re
    lw   rv, 0(t1)
    andi rv, rv, 0xFF
    pop  s1
    pop  s0
    ret
"""


WORKLOAD = Workload(
    name="fft",
    description="MiBench fft: fixed-point radix-2 butterflies, strided",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=15,
)
