"""MiBench ``qsort``, scaled.

Recursive Lomuto quicksort over a pseudorandom array, refilled with a
different seed each outer iteration.  The profile is the original's:
data-dependent branches (comparisons), pointer loads/stores, and deep
``call``/``ret`` recursion that exercises the return stack buffer.
"""

from repro.workloads.base import Workload

ARRAY_LEN = 64


def kernel_source(iterations):
    return f"""
; ---- qsort: recursive Lomuto quicksort over {ARRAY_LEN} words ----
.data
qs_array:
    .space {4 * ARRAY_LEN}

.text
workload_main:
    push s0
    push s1
    li   s0, {iterations}
qs_outer:
    beq  s0, zero, qs_all_done

    ; refill the array with an iteration-dependent LCG stream
    la   t0, qs_array
    li   t1, {ARRAY_LEN}
    mov  t3, s0
    muli t3, t3, 1103515245
    addi t3, t3, 12345
qs_fill:
    beq  t1, zero, qs_sort_start
    muli t3, t3, 1103515245
    addi t3, t3, 12345
    shri a3, t3, 4
    sw   a3, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    jmp  qs_fill

qs_sort_start:
    li   a0, 0
    li   a1, {ARRAY_LEN - 1}
    call qs_sort
    addi s0, s0, -1
    jmp  qs_outer

qs_all_done:
    la   t0, qs_array
    lw   rv, 0(t0)
    andi rv, rv, 0xFF
    pop  s1
    pop  s0
    ret

; ---- void qs_sort(int lo /*a0*/, int hi /*a1*/) ----------------------
qs_sort:
    bge  a0, a1, qs_ret
    push s0
    push s1
    mov  s0, a0               ; lo
    mov  s1, a1               ; hi

    ; Lomuto partition with pivot = arr[hi]
    la   t0, qs_array
    shli t1, s1, 2
    add  t1, t1, t0           ; &arr[hi]
    lw   t2, 0(t1)            ; pivot
    mov  t3, s0               ; i = lo (store slot)
    mov  a2, s0               ; j = lo
qs_part:
    bge  a2, s1, qs_part_done
    shli a3, a2, 2
    add  a3, a3, t0
    lw   gp, 0(a3)            ; arr[j]
    bge  gp, t2, qs_no_swap
    shli lr, t3, 2            ; swap arr[i] <-> arr[j]
    add  lr, lr, t0
    lw   a1, 0(lr)
    sw   gp, 0(lr)
    sw   a1, 0(a3)
    addi t3, t3, 1
qs_no_swap:
    addi a2, a2, 1
    jmp  qs_part
qs_part_done:
    shli lr, t3, 2            ; swap arr[i] <-> arr[hi]
    add  lr, lr, t0
    lw   a1, 0(lr)
    lw   gp, 0(t1)
    sw   gp, 0(lr)
    sw   a1, 0(t1)

    mov  a0, s0               ; qs_sort(lo, i - 1)
    addi a1, t3, -1
    push t3
    call qs_sort
    pop  t3
    addi a0, t3, 1            ; qs_sort(i + 1, hi)
    mov  a1, s1
    call qs_sort

    pop  s1
    pop  s0
qs_ret:
    ret
"""


WORKLOAD = Workload(
    name="qsort",
    description="MiBench qsort: recursive quicksort, branch + RSB heavy",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=60,
)
