"""MiBench ``dijkstra`` (network suite), scaled.

O(V^2) Dijkstra over a dense pseudorandom adjacency matrix.  Each outer
iteration solves single-source shortest paths from a rotating source
vertex.  Irregular loads (matrix rows, distance array), compare-driven
branches and a linear min-scan — the network-processing profile of the
original.
"""

from repro.workloads.base import Workload

NUM_VERTICES = 24
INFINITY = 0x3FFFFFFF


def kernel_source(iterations):
    matrix_words = NUM_VERTICES * NUM_VERTICES
    return f"""
; ---- dijkstra: O(V^2) SSSP, V = {NUM_VERTICES} ----
.data
dj_ready:
    .word 0
dj_matrix:
    .space {4 * matrix_words}
dj_dist:
    .space {4 * NUM_VERTICES}
dj_visited:
    .space {4 * NUM_VERTICES}

.text
workload_main:
    push s0
    push s1

    ; ---- one-time matrix init: weights 1..16 ----
    la   gp, dj_ready
    lw   t0, 0(gp)
    bne  t0, zero, dj_go
    li   t0, 1
    sw   t0, 0(gp)
    la   t1, dj_matrix
    li   t2, {matrix_words}
    li   t3, 777
dj_fill:
    beq  t2, zero, dj_go
    muli t3, t3, 1103515245
    addi t3, t3, 12345
    shri a3, t3, 7
    andi a3, a3, 15
    addi a3, a3, 1
    sw   a3, 0(t1)
    addi t1, t1, 4
    addi t2, t2, -1
    jmp  dj_fill

dj_go:
    li   s1, {iterations}
    li   rv, 0
dj_outer:
    beq  s1, zero, dj_done

    ; source vertex rotates with the iteration count
    li   t0, {NUM_VERTICES}
    mod  s0, s1, t0           ; s0 = src

    ; init dist[] = INF, visited[] = 0, dist[src] = 0
    la   t1, dj_dist
    la   t2, dj_visited
    li   t3, {NUM_VERTICES}
    li   a2, {INFINITY}
dj_init:
    beq  t3, zero, dj_init_src
    sw   a2, 0(t1)
    sw   zero, 0(t2)
    addi t1, t1, 4
    addi t2, t2, 4
    addi t3, t3, -1
    jmp  dj_init
dj_init_src:
    la   t1, dj_dist
    shli t2, s0, 2
    add  t2, t2, t1
    sw   zero, 0(t2)

    ; main loop: V rounds of (min-scan, relax-row)
    li   a2, {NUM_VERTICES}   ; rounds left
dj_round:
    beq  a2, zero, dj_iter_done

    ; -- find unvisited vertex u with minimal dist --
    li   t0, -1               ; u
    li   t1, {INFINITY + 1}   ; best
    li   t2, 0                ; v
dj_scan:
    slti t3, t2, {NUM_VERTICES}
    beq  t3, zero, dj_scan_done
    la   t3, dj_visited
    shli a3, t2, 2
    add  t3, t3, a3
    lw   t3, 0(t3)
    bne  t3, zero, dj_scan_next
    la   t3, dj_dist
    add  t3, t3, a3
    lw   t3, 0(t3)
    bge  t3, t1, dj_scan_next
    mov  t1, t3
    mov  t0, t2
dj_scan_next:
    addi t2, t2, 1
    jmp  dj_scan
dj_scan_done:
    blt  t0, zero, dj_iter_done   ; no reachable vertex left

    ; -- mark u visited --
    la   t2, dj_visited
    shli t3, t0, 2
    add  t2, t2, t3
    li   t3, 1
    sw   t3, 0(t2)

    ; -- relax every edge (u, v) --
    la   a3, dj_matrix
    muli t2, t0, {4 * NUM_VERTICES}
    add  a3, a3, t2           ; row pointer
    li   t2, 0                ; v
dj_relax:
    slti t3, t2, {NUM_VERTICES}
    beq  t3, zero, dj_relax_done
    lw   t3, 0(a3)            ; w(u, v)
    add  t3, t3, t1           ; dist[u] + w
    la   gp, dj_dist
    shli lr, t2, 2
    add  gp, gp, lr
    lw   lr, 0(gp)
    bge  t3, lr, dj_relax_next
    sw   t3, 0(gp)
dj_relax_next:
    addi a3, a3, 4
    addi t2, t2, 1
    jmp  dj_relax
dj_relax_done:
    addi a2, a2, -1
    jmp  dj_round

dj_iter_done:
    ; accumulate dist[V-1] so the work is observable
    la   t1, dj_dist
    lw   t2, {4 * (NUM_VERTICES - 1)}(t1)
    add  rv, rv, t2
    addi s1, s1, -1
    jmp  dj_outer

dj_done:
    andi rv, rv, 0xFF
    pop  s1
    pop  s0
    ret
"""


WORKLOAD = Workload(
    name="dijkstra",
    description="MiBench dijkstra: dense O(V^2) SSSP, irregular loads",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=30,
)
