"""MiBench ``crc32`` (telecomm suite), scaled.

Table-driven CRC-32: the 256-entry table is generated once with the real
reflected polynomial 0xEDB88320, then each iteration folds 64
pseudorandom bytes through the table — one dependent table load per
byte, the classic load-use-latency-bound telecom kernel.
"""

from repro.workloads.base import Workload

BYTES_PER_ITERATION = 64


def kernel_source(iterations):
    return f"""
; ---- crc32: table-driven CRC over {BYTES_PER_ITERATION} bytes/iteration ----
.data
crc_table:
    .space 1024
crc_table_ready:
    .word 0

.text
workload_main:
    push s0
    push s1

    ; ---- one-time table generation ----
    la   gp, crc_table_ready
    lw   t0, 0(gp)
    bne  t0, zero, crc_ready
    li   t0, 1
    sw   t0, 0(gp)
    la   t1, crc_table
    li   t2, 0                ; i
crc_tbl_outer:
    slti t0, t2, 256
    beq  t0, zero, crc_ready
    mov  t3, t2               ; c = i
    li   a2, 8
crc_tbl_inner:
    beq  a2, zero, crc_tbl_store
    andi a3, t3, 1
    shri t3, t3, 1
    beq  a3, zero, crc_tbl_no_xor
    xori t3, t3, 0xEDB88320
crc_tbl_no_xor:
    addi a2, a2, -1
    jmp  crc_tbl_inner
crc_tbl_store:
    shli a3, t2, 2
    add  a3, a3, t1
    sw   t3, 0(a3)
    addi t2, t2, 1
    jmp  crc_tbl_outer

crc_ready:
    li   s1, {iterations}
    li   s0, 55555            ; LCG state
    li   rv, -1               ; crc = 0xFFFFFFFF
    la   a2, crc_table
crc_outer:
    beq  s1, zero, crc_done
    li   t0, {BYTES_PER_ITERATION}
crc_bytes:
    beq  t0, zero, crc_next_iter
    muli s0, s0, 1103515245
    addi s0, s0, 12345
    shri t1, s0, 16
    andi t1, t1, 0xFF         ; next input byte
    xor  t2, rv, t1
    andi t2, t2, 0xFF
    shli t2, t2, 2
    add  t2, t2, a2
    lw   t3, 0(t2)            ; table[(crc ^ b) & 0xFF]
    shri rv, rv, 8
    xor  rv, rv, t3
    addi t0, t0, -1
    jmp  crc_bytes
crc_next_iter:
    addi s1, s1, -1
    jmp  crc_outer

crc_done:
    xori rv, rv, -1           ; final complement
    andi rv, rv, 0xFF
    pop  s1
    pop  s0
    ret
"""


WORKLOAD = Workload(
    name="crc32",
    description="MiBench crc32: table-driven CRC, dependent-load bound",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=300,
)
