"""MiBench ``sha``: a real SHA-1 compression loop on the toy ISA.

Structurally faithful: 16-word block load from a large message buffer,
80-round message-schedule expansion with rotate-left-by-1, and the four
round families (choice / parity / majority / parity) with their K
constants.  Rotations are synthesised from shifts+or since the ISA has
no native rotate — exactly what a compiler would emit.

Table I's "SHA 1" and "SHA 2" rows are two input sizes of this kernel
(see :mod:`repro.core.experiments`).
"""

from repro.workloads.base import Workload

MSG_BYTES = 65536  # message buffer; larger than L1D so blocks stream in
MSG_WORDS = MSG_BYTES // 4


def kernel_source(iterations):
    return f"""
; ---- sha: SHA-1 compression over a {MSG_BYTES}-byte message ----
.data
sha_h:
    .word 0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0
sha_w:
    .space 320
sha_cursor:
    .word 0
sha_init_flag:
    .word 0
sha_blocks_left:
    .word 0
sha_msg:
    .space {MSG_BYTES}

.text
workload_main:
    push s0
    push s1

    ; ---- one-time pseudorandom message init ----
    la   gp, sha_init_flag
    lw   t0, 0(gp)
    bne  t0, zero, sha_msg_ready
    li   t0, 1
    sw   t0, 0(gp)
    la   t1, sha_msg
    li   t2, {MSG_WORDS}
    li   t3, 424242
sha_fill:
    beq  t2, zero, sha_msg_ready
    muli t3, t3, 1103515245
    addi t3, t3, 12345
    sw   t3, 0(t1)
    addi t1, t1, 4
    addi t2, t2, -1
    jmp  sha_fill
sha_msg_ready:

    la   gp, sha_blocks_left
    li   t0, {iterations}
    sw   t0, 0(gp)

sha_block_loop:
    la   gp, sha_blocks_left
    lw   t0, 0(gp)
    beq  t0, zero, sha_done
    addi t0, t0, -1
    sw   t0, 0(gp)

    ; ---- load the next 16-word block into W[0..15] ----
    la   gp, sha_cursor
    lw   t1, 0(gp)
    la   t2, sha_msg
    add  t2, t2, t1
    addi t1, t1, 64
    li   t3, {MSG_BYTES}
    blt  t1, t3, sha_cursor_ok
    li   t1, 0
sha_cursor_ok:
    sw   t1, 0(gp)
    la   t3, sha_w
    li   t0, 16
sha_load16:
    beq  t0, zero, sha_expand_init
    lw   s0, 0(t2)
    sw   s0, 0(t3)
    addi t2, t2, 4
    addi t3, t3, 4
    addi t0, t0, -1
    jmp  sha_load16

    ; ---- W[i] = rol1(W[i-3] ^ W[i-8] ^ W[i-14] ^ W[i-16]) ----
sha_expand_init:
    la   a2, sha_w
    li   s1, 16
sha_expand:
    slti t0, s1, 80
    beq  t0, zero, sha_rounds_init
    shli t1, s1, 2
    add  t1, t1, a2
    lw   t2, -12(t1)
    lw   t3, -32(t1)
    xor  t2, t2, t3
    lw   t3, -56(t1)
    xor  t2, t2, t3
    lw   t3, -64(t1)
    xor  t2, t2, t3
    shli t3, t2, 1
    shri t2, t2, 31
    or   t2, t2, t3
    sw   t2, 0(t1)
    addi s1, s1, 1
    jmp  sha_expand

    ; ---- 80 rounds: a=t0 b=t1 c=t2 d=t3 e=s0, i=s1 ----
sha_rounds_init:
    la   gp, sha_h
    lw   t0, 0(gp)
    lw   t1, 4(gp)
    lw   t2, 8(gp)
    lw   t3, 12(gp)
    lw   s0, 16(gp)
    li   s1, 0
sha_round:
    slti a0, s1, 80
    beq  a0, zero, sha_block_done
    slti a0, s1, 20
    beq  a0, zero, sha_f2
    and  a0, t1, t2            ; choice: (b&c) | (~b&d)
    xori a1, t1, -1
    and  a1, a1, t3
    or   a0, a0, a1
    li   a1, 0x5A827999
    jmp  sha_fk_done
sha_f2:
    slti a0, s1, 40
    beq  a0, zero, sha_f3
    xor  a0, t1, t2            ; parity
    xor  a0, a0, t3
    li   a1, 0x6ED9EBA1
    jmp  sha_fk_done
sha_f3:
    slti a0, s1, 60
    beq  a0, zero, sha_f4
    and  a0, t1, t2            ; majority
    and  lr, t1, t3
    or   a0, a0, lr
    and  lr, t2, t3
    or   a0, a0, lr
    li   a1, 0x8F1BBCDC
    jmp  sha_fk_done
sha_f4:
    xor  a0, t1, t2            ; parity
    xor  a0, a0, t3
    li   a1, 0xCA62C1D6
sha_fk_done:
    shli gp, t0, 5             ; temp = rol5(a) + f + e + K + W[i]
    shri lr, t0, 27
    or   gp, gp, lr
    add  gp, gp, a0
    add  gp, gp, s0
    add  gp, gp, a1
    shli lr, s1, 2
    add  lr, lr, a2
    lw   lr, 0(lr)
    add  gp, gp, lr
    mov  s0, t3                ; e = d
    mov  t3, t2                ; d = c
    shli lr, t1, 30            ; c = rol30(b)
    shri t2, t1, 2
    or   t2, t2, lr
    mov  t1, t0                ; b = a
    mov  t0, gp                ; a = temp
    addi s1, s1, 1
    jmp  sha_round

sha_block_done:
    la   gp, sha_h
    lw   lr, 0(gp)
    add  lr, lr, t0
    sw   lr, 0(gp)
    lw   lr, 4(gp)
    add  lr, lr, t1
    sw   lr, 4(gp)
    lw   lr, 8(gp)
    add  lr, lr, t2
    sw   lr, 8(gp)
    lw   lr, 12(gp)
    add  lr, lr, t3
    sw   lr, 12(gp)
    lw   lr, 16(gp)
    add  lr, lr, s0
    sw   lr, 16(gp)
    jmp  sha_block_loop

sha_done:
    la   gp, sha_h
    lw   rv, 0(gp)
    andi rv, rv, 0xFF
    pop  s1
    pop  s0
    ret
"""


WORKLOAD = Workload(
    name="sha",
    description="MiBench sha: real SHA-1 rounds over a streaming message",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=40,
)
