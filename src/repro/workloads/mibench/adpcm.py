"""MiBench ``adpcm`` (telecomm suite), scaled.

IMA ADPCM encoding: per input sample, compute the delta against the
predictor, quantise it against the current step size with a chain of
compare-and-subtract branches, clamp the predictor, and walk the step
index through the (real) 89-entry step-size table.  Data-dependent
short branches + one table load per sample — the telecom codec profile.
"""

from repro.workloads.base import Workload

# The genuine IMA ADPCM step-size table.
_STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

_INDEX_ADJUST = [-1, -1, -1, -1, 2, 4, 6, 8]

SAMPLES_PER_ITERATION = 64


def kernel_source(iterations):
    step_rows = "\n".join(
        "    .word " + ", ".join(str(v) for v in _STEP_TABLE[i:i + 12])
        for i in range(0, len(_STEP_TABLE), 12)
    )
    adjust_row = "    .word " + ", ".join(str(v) for v in _INDEX_ADJUST)
    return f"""
; ---- adpcm: IMA ADPCM encoder over an LCG sample stream ----
.data
ad_steps:
{step_rows}
ad_adjust:
{adjust_row}
ad_predicted:
    .word 0
ad_index:
    .word 0

.text
workload_main:
    push s0
    push s1
    li   s1, {iterations}
    li   s0, 646464               ; sample-stream LCG
    li   rv, 0
ad_outer:
    beq  s1, zero, ad_done
    li   a2, {SAMPLES_PER_ITERATION}
ad_sample:
    beq  a2, zero, ad_next_iter

    ; ---- next 16-bit signed sample ----
    muli s0, s0, 1103515245
    addi s0, s0, 12345
    shri t0, s0, 12
    andi t0, t0, 0xFFFF
    addi t0, t0, -32768           ; sample in [-32768, 32767]

    ; ---- delta = sample - predicted ----
    la   t1, ad_predicted
    lw   t2, 0(t1)
    sub  t0, t0, t2               ; delta

    ; ---- sign bit + magnitude ----
    li   t3, 0                    ; code
    bge  t0, zero, ad_positive
    li   t3, 8                    ; sign bit
    sub  t0, zero, t0
ad_positive:

    ; ---- step = steps[index] ----
    la   a3, ad_index
    lw   gp, 0(a3)
    shli lr, gp, 2
    la   a0, ad_steps
    add  a0, a0, lr
    lw   a0, 0(a0)                ; step

    ; ---- quantise: the codec's compare-subtract ladder ----
    blt  t0, a0, ad_q1
    ori  t3, t3, 4
    sub  t0, t0, a0
ad_q1:
    shri a1, a0, 1
    blt  t0, a1, ad_q2
    ori  t3, t3, 2
    sub  t0, t0, a1
ad_q2:
    shri a1, a0, 2
    blt  t0, a1, ad_q3
    ori  t3, t3, 1
ad_q3:

    ; ---- predictor update (approximate reconstruction) ----
    andi lr, t3, 7
    mul  lr, lr, a0
    shri lr, lr, 2
    andi a1, t3, 8
    beq  a1, zero, ad_add
    sub  t2, t2, lr
    jmp  ad_clamp
ad_add:
    add  t2, t2, lr
ad_clamp:
    li   a1, 32767
    bge  a1, t2, ad_clamp_low
    mov  t2, a1
ad_clamp_low:
    li   a1, -32768
    bge  t2, a1, ad_store_pred
    mov  t2, a1
ad_store_pred:
    sw   t2, 0(t1)

    ; ---- index += adjust[code & 7], clamped to [0, 88] ----
    andi lr, t3, 7
    shli lr, lr, 2
    la   a1, ad_adjust
    add  a1, a1, lr
    lw   a1, 0(a1)
    add  gp, gp, a1
    bge  gp, zero, ad_index_high
    li   gp, 0
ad_index_high:
    li   a1, 88
    bge  a1, gp, ad_index_store
    mov  gp, a1
ad_index_store:
    sw   gp, 0(a3)

    add  rv, rv, t3               ; accumulate codes
    addi a2, a2, -1
    jmp  ad_sample

ad_next_iter:
    addi s1, s1, -1
    jmp  ad_outer

ad_done:
    andi rv, rv, 0xFF
    pop  s1
    pop  s0
    ret
"""


WORKLOAD = Workload(
    name="adpcm",
    description="MiBench adpcm: IMA codec ladder, branchy + table loads",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=60,
)
