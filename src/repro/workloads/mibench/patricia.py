"""MiBench ``patricia`` (network suite), scaled.

Routing-table lookups in a binary bit-trie: insertion builds the trie
in a node arena once; each iteration then performs a burst of lookups
with pseudorandom keys (half present, half scrambled misses).  Per node
visit: load the node's bit index, test that key bit, follow the
left/right child pointer — irregular, dependent loads with data-driven
branches, the signature of the original's longest-prefix matching.

Leaves carry the full key and every lookup ends in a key compare, so
hits/misses are exact; internal nodes descend one bit per level
(an uncompressed trie — path compression is what the real PATRICIA
adds, with the same access pattern per visited node).
"""

from repro.workloads.base import Workload

NUM_KEYS = 256
NODE_WORDS = 4  # [bit, left, right, key]
LOOKUPS_PER_ITERATION = 64


def kernel_source(iterations):
    # Worst case: one internal chain node per bit per key.
    arena_bytes = 4 * NODE_WORDS * (34 * NUM_KEYS)
    return f"""
; ---- patricia: binary bit-trie insert + lookup bursts ----
; node layout: +0 bit index (-1 = leaf), +4 left, +8 right, +12 key
.data
pt_ready:
    .word 0
pt_next_node:
    .word 0
pt_root:
    .word 0
pt_arena:
    .space {arena_bytes}

.text
workload_main:
    push s0
    push s1

    ; ---- one-time build: insert {NUM_KEYS} LCG keys ----
    la   gp, pt_ready
    lw   t0, 0(gp)
    bne  t0, zero, pt_go
    li   t0, 1
    sw   t0, 0(gp)
    li   s0, 80808                ; key LCG
    li   s1, {NUM_KEYS}
pt_build:
    beq  s1, zero, pt_go
    muli s0, s0, 1103515245
    addi s0, s0, 12345
    mov  a0, s0
    call pt_insert
    addi s1, s1, -1
    jmp  pt_build

pt_go:
    li   s1, {iterations}
    li   gp, 0                    ; hit accumulator
pt_outer:
    beq  s1, zero, pt_all_done
    li   s0, 80808                ; replay the same key stream
    li   a2, {LOOKUPS_PER_ITERATION}
pt_lookup_burst:
    beq  a2, zero, pt_next_iter
    muli s0, s0, 1103515245
    addi s0, s0, 12345
    mov  a0, s0
    andi t0, a2, 1                ; every other probe is a miss key
    beq  t0, zero, pt_probe
    xori a0, a0, 0x5A5A5A5A
pt_probe:
    push a2
    call pt_search
    pop  a2
    add  gp, gp, rv
    addi a2, a2, -1
    jmp  pt_lookup_burst
pt_next_iter:
    addi s1, s1, -1
    jmp  pt_outer

pt_all_done:
    andi rv, gp, 0xFF
    pop  s1
    pop  s0
    ret

; ---- int pt_search(key a0): 1 if key present -------------------------
pt_search:
    la   t0, pt_root
    lw   t0, 0(t0)
    beq  t0, zero, pt_search_miss
pt_walk:
    lw   t1, 0(t0)                ; bit index (-1 = leaf)
    blt  t1, zero, pt_leaf
    shr  t2, a0, t1
    andi t2, t2, 1
    beq  t2, zero, pt_walk_left
    lw   t0, 8(t0)
    jmp  pt_walk
pt_walk_left:
    lw   t0, 4(t0)
    jmp  pt_walk
pt_leaf:
    lw   t1, 12(t0)
    bne  t1, a0, pt_search_miss
    li   rv, 1
    ret
pt_search_miss:
    li   rv, 0
    ret

; ---- void pt_insert(key a0) -------------------------------------------
; Descends existing internals; on reaching a leaf, splits: internal
; chain nodes are added (one bit per level) until the stored key and
; the new key disagree.  While their bits agree, the chain's *other*
; child points at the old leaf (any lookup drifting there terminates
; in a key compare, so correctness holds).
pt_insert:
    push s0
    push s1
    mov  s0, a0                   ; new key
    call pt_alloc                 ; new leaf
    mov  s1, rv
    li   t0, -1
    sw   t0, 0(s1)
    sw   s0, 12(s1)

    la   a3, pt_root              ; slot holding the current pointer
    lw   t1, 0(a3)
    bne  t1, zero, pt_ins_descend
    sw   s1, 0(a3)                ; empty trie
    jmp  pt_ins_done
pt_ins_descend:
    li   a2, 31                   ; next bit to test
pt_ins_step:
    lw   t1, 0(a3)                ; current node
    lw   t2, 0(t1)                ; its bit
    blt  t2, zero, pt_ins_split
    shr  t3, s0, t2
    andi t3, t3, 1
    addi a2, t2, -1               ; descend one bit per level
    beq  t3, zero, pt_ins_left
    addi a3, t1, 8
    jmp  pt_ins_step
pt_ins_left:
    addi a3, t1, 4
    jmp  pt_ins_step

pt_ins_split:
    ; t1 = old leaf sitting in *a3
    lw   t2, 12(t1)               ; old key
pt_split_loop:
    blt  a2, zero, pt_ins_done    ; identical keys: keep the old leaf
    shr  t3, s0, a2
    andi t3, t3, 1                ; new key's bit
    shr  t0, t2, a2
    andi t0, t0, 1                ; old key's bit
    push t0
    push t3
    push t1
    push t2
    call pt_alloc                 ; internal chain node (clobbers t0-t2)
    pop  t2
    pop  t1
    pop  t3
    pop  t0
    sw   a2, 0(rv)
    sw   rv, 0(a3)                ; hook it into the parent slot
    bne  t0, t3, pt_split_final
    ; bits agree: old leaf parks on the other side, chain continues
    beq  t3, zero, pt_chain_left
    sw   t1, 4(rv)                ; other side
    addi a3, rv, 8
    jmp  pt_chain_next
pt_chain_left:
    sw   t1, 8(rv)
    addi a3, rv, 4
pt_chain_next:
    sw   t1, 0(a3)                ; keep the slot non-null meanwhile
    addi a2, a2, -1
    jmp  pt_split_loop
pt_split_final:
    ; bits differ: place both leaves
    beq  t3, zero, pt_final_left
    sw   t1, 4(rv)
    sw   s1, 8(rv)
    jmp  pt_ins_done
pt_final_left:
    sw   s1, 4(rv)
    sw   t1, 8(rv)
pt_ins_done:
    pop  s1
    pop  s0
    ret

; ---- node* pt_alloc(): bump allocator over the arena ------------------
pt_alloc:
    la   t0, pt_next_node
    lw   t1, 0(t0)
    addi t2, t1, 1
    sw   t2, 0(t0)
    muli t1, t1, {4 * NODE_WORDS}
    la   rv, pt_arena
    add  rv, rv, t1
    ret
"""


WORKLOAD = Workload(
    name="patricia",
    description="MiBench patricia: bit-trie lookups, dependent loads",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=40,
)
