"""MiBench ``basicmath`` (the paper's "Math" host), scaled.

The original runs cubic solves, integer square roots and angle
conversions.  The kernel below keeps the same operation mix — divide-
heavy Newton iterations, Euclid gcd (modulo), Horner cubic evaluation —
over a pseudorandom input stream, so its HPC signature (high
``mul_div_instructions``, moderate branching, almost no memory traffic)
matches the original's character.
"""

from repro.workloads.base import Workload


def kernel_source(iterations):
    return f"""
; ---- basicmath: Newton isqrt + Euclid gcd + cubic Horner ----
.text
workload_main:
    li   t0, {iterations}
    li   s0, 12345            ; LCG state
    li   rv, 0
bm_outer:
    beq  t0, zero, bm_done
    muli s0, s0, 1103515245   ; x = lcg()
    addi s0, s0, 12345
    shri t1, s0, 8
    andi t1, t1, 0xFFFF
    ori  t1, t1, 1            ; n >= 1

    ; integer sqrt: ten Newton steps r = (r + n/r) / 2
    mov  t2, t1
    li   t3, 10
bm_newton:
    beq  t3, zero, bm_newton_done
    div  s1, t1, t2
    add  t2, t2, s1
    shri t2, t2, 1
    addi t3, t3, -1
    jmp  bm_newton
bm_newton_done:
    add  rv, rv, t2

    ; gcd(n, 9240) by Euclid
    mov  t2, t1
    li   t3, 9240
bm_gcd:
    beq  t3, zero, bm_gcd_done
    mod  s1, t2, t3
    mov  t2, t3
    mov  t3, s1
    jmp  bm_gcd
bm_gcd_done:
    add  rv, rv, t2

    ; cubic 3n^3 + 5n^2 + 7n + 11 by Horner
    muli t2, t1, 3
    addi t2, t2, 5
    mul  t2, t2, t1
    addi t2, t2, 7
    mul  t2, t2, t1
    addi t2, t2, 11
    add  rv, rv, t2

    addi t0, t0, -1
    jmp  bm_outer
bm_done:
    andi rv, rv, 0xFF
    ret
"""


WORKLOAD = Workload(
    name="basicmath",
    description="MiBench basicmath (Math): isqrt/gcd/cubic, divide heavy",
    category="mibench",
    kernel_source=kernel_source,
    default_iterations=200,
)
