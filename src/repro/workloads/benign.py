"""Extra benign applications (paper: "browsers, text editors, etc.").

The HID's training set must contain more than the host: Section II-E
profiles other benign applications "to emulate a practical situation".
Two synthetic apps with distinct microarchitectural characters stand in
for them:

* ``browser`` — DOM-ish pointer chasing (dependent irregular loads),
  bursts of string handling through libc, and layout-arithmetic bursts.
* ``editor`` — gap-buffer editing: block moves via ``memcpy``, linear
  character scans, counter updates.
"""

from repro.workloads.base import Workload

BROWSER_NODES = 16384  # 128 KiB of node arrays: real browsers miss caches


def _word_rows(words, per_row=16):
    """Render a word list as .word directives, 16 per line."""
    rows = []
    for start in range(0, len(words), per_row):
        chunk = words[start:start + per_row]
        rows.append("    .word " + ", ".join(str(w) for w in chunk))
    return "\n".join(rows)
EDITOR_BUFFER = 131072  # 128 KiB text: scans stream through L1


def browser_source(iterations):
    # The DOM graph is baked into .data at build time (a real browser
    # arrives with its heap already allocated): br_next is a full-cycle
    # permutation so the chase streams through all 64 KiB of nodes, and
    # br_value carries pseudorandom payloads.
    mask = BROWSER_NODES - 1
    next_words = [(i + 7919) & mask for i in range(BROWSER_NODES)]
    value_words = []
    state = 909090
    for _ in range(BROWSER_NODES):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        value_words.append(state & 0xFFFF)
    next_data = _word_rows(next_words)
    value_data = _word_rows(value_words)
    return f"""
; ---- browser: pointer chase + string work + layout arithmetic ----
.data
br_next:
{next_data}
br_value:
{value_data}
br_markup:
    .asciiz "<div class='content'><p>lorem ipsum dolor sit amet</p></div>"
br_scratch:
    .space 128

.text
workload_main:
    push s0
    push s1

    li   s1, {iterations}
    li   rv, 0
br_outer:
    beq  s1, zero, br_done

    ; ---- chase 200 links through the DOM ----
    ; start node varies per iteration so successive chases cover
    ; different arcs of the permutation cycle
    muli s0, s1, 977
    andi s0, s0, {BROWSER_NODES - 1}
    li   t0, 200
br_chase:
    beq  t0, zero, br_strings
    shli t1, s0, 2
    la   t2, br_next
    add  t2, t2, t1
    lw   s0, 0(t2)            ; dependent load: next node
    la   t2, br_value
    add  t2, t2, t1
    lw   t3, 0(t2)
    add  rv, rv, t3
    addi t0, t0, -1
    jmp  br_chase

br_strings:
    ; ---- render: copy markup + measure it ----
    la   a0, br_scratch
    la   a1, br_markup
    call strcpy
    la   a0, br_scratch
    call strlen
    add  rv, rv, rv

    ; ---- layout arithmetic burst ----
    li   t0, 64
    li   t1, 7
br_layout:
    beq  t0, zero, br_next_iter
    muli t1, t1, 31
    addi t1, t1, 17
    andi t1, t1, 0xFFFF
    add  rv, rv, t1
    addi t0, t0, -1
    jmp  br_layout

br_next_iter:
    addi s1, s1, -1
    jmp  br_outer

br_done:
    andi rv, rv, 0xFF
    pop  s1
    pop  s0
    ret
"""


def editor_source(iterations):
    return f"""
; ---- editor: gap-buffer block moves + character scans ----
.data
ed_ready:
    .word 0
ed_buffer:
    .space {EDITOR_BUFFER}

.text
workload_main:
    push s0
    push s1

    ; ---- one-time buffer init with printable text ----
    la   gp, ed_ready
    lw   t0, 0(gp)
    bne  t0, zero, ed_go
    li   t0, 1
    sw   t0, 0(gp)
    la   t1, ed_buffer
    li   t2, {EDITOR_BUFFER}
    li   t3, 123123
ed_init:
    beq  t2, zero, ed_go
    muli t3, t3, 1103515245
    addi t3, t3, 12345
    shri a3, t3, 11
    andi a3, a3, 25
    addi a3, a3, 'a'
    sb   a3, 0(t1)
    addi t1, t1, 1
    addi t2, t2, -1
    jmp  ed_init

ed_go:
    li   s1, {iterations}
    li   rv, 0
ed_outer:
    beq  s1, zero, ed_done

    ; ---- move the gap: memcpy a 256-byte block by 16 bytes ----
    li   t0, {EDITOR_BUFFER - 512}
    mod  t0, s1, t0           ; block origin varies per edit
    la   a1, ed_buffer
    add  a1, a1, t0           ; src
    addi a0, a1, 16           ; dst (overlap-free direction)
    li   a2, 256
    call memcpy

    ; ---- scan an 8 KiB slice around the cursor for a character ----
    li   t2, {EDITOR_BUFFER - 8192}
    mod  t0, s1, t2           ; slice origin rotates with the edit count
    la   t1, ed_buffer
    add  t1, t1, t0
    li   t2, 8192
    li   t3, 'q'
ed_scan:
    beq  t2, zero, ed_next_iter
    lb   a3, 0(t1)
    bne  a3, t3, ed_scan_next
    addi rv, rv, 1
ed_scan_next:
    addi t1, t1, 1
    addi t2, t2, -1
    jmp  ed_scan

ed_next_iter:
    addi s1, s1, -1
    jmp  ed_outer

ed_done:
    andi rv, rv, 0xFF
    pop  s1
    pop  s0
    ret
"""


BROWSER = Workload(
    name="browser",
    description="Synthetic browser: pointer chasing + strings + layout math",
    category="benign",
    kernel_source=browser_source,
    default_iterations=60,
)

EDITOR = Workload(
    name="editor",
    description="Synthetic text editor: gap-buffer moves + scans",
    category="benign",
    kernel_source=editor_source,
    default_iterations=60,
)


HID_DAEMON_LIGHT_BUFFER = 16 * 1024
HID_DAEMON_HEAVY_BUFFER = 384 * 1024


def _hid_daemon_source(buffer_bytes):
    """HID daemon kernel: stream a sample buffer, accumulate statistics.

    Models the measurement side of the paper's HID on the same machine:
    the *offline* type only gathers HPC samples (small buffer, light
    cache footprint), the *online* type additionally retrains on the
    accumulated trace matrix (large buffer streaming through the shared
    L2 — which is what shows up as extra host overhead in Table I).
    """
    words = buffer_bytes // 4
    def source(iterations):
        return f"""
; ---- hid daemon: stream {buffer_bytes} bytes of trace data ----
.data
hidd_ready:
    .word 0
hidd_buffer:
    .space {buffer_bytes}

.text
workload_main:
    push s0
    push s1

    la   gp, hidd_ready
    lw   t0, 0(gp)
    bne  t0, zero, hidd_go
    li   t0, 1
    sw   t0, 0(gp)
    la   t1, hidd_buffer
    li   t2, {words}
    li   t3, 456456
hidd_init:
    beq  t2, zero, hidd_go
    muli t3, t3, 1103515245
    addi t3, t3, 12345
    sw   t3, 0(t1)
    addi t1, t1, 4
    addi t2, t2, -1
    jmp  hidd_init

hidd_go:
    li   s1, {{iterations}}
    li   rv, 0
hidd_outer:
    beq  s1, zero, hidd_done
    ; one pass over the trace matrix: load, scale, accumulate
    la   t1, hidd_buffer
    li   t2, {words}
hidd_pass:
    beq  t2, zero, hidd_next
    lw   t3, 0(t1)
    muli t3, t3, 3
    shri t3, t3, 2
    add  rv, rv, t3
    addi t1, t1, 4
    addi t2, t2, -1
    jmp  hidd_pass
hidd_next:
    addi s1, s1, -1
    jmp  hidd_outer

hidd_done:
    andi rv, rv, 0xFF
    pop  s1
    pop  s0
    ret
""".format(iterations=iterations)
    return source


HID_DAEMON_LIGHT = Workload(
    name="hid_daemon_light",
    description="Offline-type HID daemon: HPC sampling only (small footprint)",
    category="benign",
    kernel_source=_hid_daemon_source(HID_DAEMON_LIGHT_BUFFER),
    default_iterations=100,
)

HID_DAEMON_HEAVY = Workload(
    name="hid_daemon_heavy",
    description="Online-type HID daemon: sampling + retraining (L2-streaming)",
    category="benign",
    kernel_source=_hid_daemon_source(HID_DAEMON_HEAVY_BUFFER),
    default_iterations=100,
)
