"""Setup shim so `pip install -e . --no-use-pep517` works offline.

The execution environment has no `wheel` package, which PEP 660 editable
installs require; this legacy path only needs setuptools.
"""

from setuptools import setup

setup()
